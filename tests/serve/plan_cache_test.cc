// PlanCache + fingerprint contracts: canonicalization is invariant under
// relation permutation and attribute renaming, a cache hit returns a plan
// bit-identical (Strategy::IdenticalTo) to a cold optimize at every thread
// count, LRU eviction respects the byte budget without ever dropping the
// newest plan, and hash collisions resolve through the full canonical key.
#include "serve/plan_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/cost.h"
#include "optimize/adaptive.h"
#include "scheme/query_graph.h"
#include "serve/fingerprint.h"
#include "workload/generator.h"

namespace taujoin {
namespace {

PlanCacheEntryInit EntryInit(uint64_t cost, const JoinTree* tree = nullptr) {
  PlanCacheEntryInit init;
  init.cost = cost;
  init.join_tree = tree;
  return init;
}

Database ShapedDatabase(QueryShape shape, int n, uint64_t seed) {
  GeneratorOptions options;
  options.shape = shape;
  options.relation_count = n;
  options.rows_per_relation = 16;
  options.join_domain = 4;
  Rng rng(seed);
  return RandomDatabase(options, rng);
}

TEST(FingerprintTest, DeterministicAndModelScoped) {
  const Database db = ShapedDatabase(QueryShape::kChain, 5, 1);
  const RelMask mask = db.scheme().full_mask();
  const QueryFingerprint a = FingerprintQuery(db.scheme(), mask, "m");
  const QueryFingerprint b = FingerprintQuery(db.scheme(), mask, "m");
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.canonical_position, b.canonical_position);

  const QueryFingerprint other = FingerprintQuery(db.scheme(), mask, "m2");
  EXPECT_NE(a.key, other.key);
}

TEST(FingerprintTest, InvariantUnderAttributeRenaming) {
  const DatabaseScheme named = DatabaseScheme::Parse({"AB", "BC", "CD"});
  const DatabaseScheme renamed = DatabaseScheme::Parse({"XY", "YZ", "ZW"});
  const QueryFingerprint a =
      FingerprintQuery(named, named.full_mask(), "m");
  const QueryFingerprint b =
      FingerprintQuery(renamed, renamed.full_mask(), "m");
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.hash, b.hash);
}

TEST(FingerprintTest, InvariantUnderRelationPermutation) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kStar, QueryShape::kCycle,
        QueryShape::kClique}) {
    const DatabaseScheme scheme = MakeShapedScheme(shape, 6);
    std::vector<Schema> shuffled(scheme.schemes());
    Rng rng(7);
    rng.Shuffle(shuffled);
    const DatabaseScheme permuted(shuffled);
    const QueryFingerprint a =
        FingerprintQuery(scheme, scheme.full_mask(), "m");
    const QueryFingerprint b =
        FingerprintQuery(permuted, permuted.full_mask(), "m");
    EXPECT_EQ(a.key, b.key) << QueryShapeToString(shape);
  }
}

TEST(FingerprintTest, DistinguishesShapeAndSize) {
  const auto fp = [](QueryShape shape, int n) {
    const DatabaseScheme scheme = MakeShapedScheme(shape, n);
    return FingerprintQuery(scheme, scheme.full_mask(), "m").key;
  };
  EXPECT_NE(fp(QueryShape::kChain, 4), fp(QueryShape::kStar, 4));
  EXPECT_NE(fp(QueryShape::kChain, 4), fp(QueryShape::kChain, 5));
  EXPECT_NE(fp(QueryShape::kCycle, 4), fp(QueryShape::kClique, 4));
}

TEST(FingerprintTest, PositionMapsAreInverse) {
  const DatabaseScheme scheme = MakeShapedScheme(QueryShape::kStar, 5);
  const QueryFingerprint fp =
      FingerprintQuery(scheme, scheme.full_mask(), "m");
  const std::vector<int> inverse = fp.PositionToRelation();
  ASSERT_EQ(inverse.size(), 5u);
  for (size_t rel = 0; rel < fp.canonical_position.size(); ++rel) {
    const int pos = fp.canonical_position[rel];
    ASSERT_GE(pos, 0);
    EXPECT_EQ(inverse[static_cast<size_t>(pos)], static_cast<int>(rel));
  }
}

// The differential contract the serving layer rests on: for random shaped
// schemes up to n = 10, a cache hit returns a Strategy bit-identical to
// what a cold optimize produces, with the same cost, at 1 / 2 / hardware
// thread counts (the optimizers are deterministic at any parallelism, so
// cold plans are comparable across thread counts too).
TEST(PlanCacheDifferentialTest, HitsAreBitIdenticalToColdOptimize) {
  const int hw = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  std::vector<int> thread_counts{1, 2};
  if (hw > 2) thread_counts.push_back(hw);

  struct Case {
    QueryShape shape;
    int n;
  };
  const std::vector<Case> cases = {
      {QueryShape::kChain, 3},  {QueryShape::kChain, 10},
      {QueryShape::kStar, 6},   {QueryShape::kCycle, 5},
      {QueryShape::kClique, 4}, {QueryShape::kStar, 9},
  };
  uint64_t seed = 100;
  for (const Case& c : cases) {
    const Database db = ShapedDatabase(c.shape, c.n, ++seed);
    CostEngine engine(&db);
    const RelMask mask = db.scheme().full_mask();
    const QueryFingerprint fp = FingerprintQuery(
        db.scheme(), mask, std::string("case/") + std::to_string(seed));

    for (const int threads : thread_counts) {
      ThreadPool pool(threads - 1);
      AdaptiveOptions options;
      options.parallel.threads = threads;
      options.parallel.pool = &pool;

      const AdaptiveResult cold = OptimizeAdaptive(engine, mask, options);
      ASSERT_TRUE(cold.plan.strategy.IsValid());
      EXPECT_EQ(cold.plan.strategy.mask(), mask);

      PlanCache cache;
      EXPECT_FALSE(cache.Lookup(fp).has_value());
      cache.Insert(fp, cold.plan.strategy, EntryInit(cold.plan.cost));

      const std::optional<CachedPlan> hit = cache.Lookup(fp);
      ASSERT_TRUE(hit.has_value())
          << QueryShapeToString(c.shape) << " n=" << c.n;
      EXPECT_TRUE(hit->strategy.IdenticalTo(cold.plan.strategy))
          << QueryShapeToString(c.shape) << " n=" << c.n
          << " threads=" << threads;
      EXPECT_EQ(hit->cost, cold.plan.cost);

      // And the cold optimize itself is reproducible (determinism at any
      // thread count), so "bit-identical to the cached plan" means
      // "bit-identical to any cold optimize".
      const AdaptiveResult again = OptimizeAdaptive(engine, mask, options);
      EXPECT_TRUE(again.plan.strategy.IdenticalTo(cold.plan.strategy));
    }
  }
}

// A plan cached under one relation order serves the isomorphic query with
// a different order: the hit comes back relabeled into the inquirer's
// index space and costs exactly the same there.
TEST(PlanCacheDifferentialTest, TransfersPlansAcrossIsomorphicSchemes) {
  const Database db = ShapedDatabase(QueryShape::kChain, 6, 3);
  CostEngine engine(&db);
  const RelMask mask = db.scheme().full_mask();

  // The permuted twin: same schemes and states, relation order reversed.
  std::vector<Schema> rev_schemes(db.scheme().schemes());
  std::reverse(rev_schemes.begin(), rev_schemes.end());
  std::vector<Relation> rev_states;
  for (int i = db.size() - 1; i >= 0; --i) rev_states.push_back(db.state(i));
  const Database permuted = Database::CreateOrDie(
      DatabaseScheme(std::move(rev_schemes)), std::move(rev_states));
  CostEngine permuted_engine(&permuted);

  // A shared model id forces the two to alias (the WorkloadDriver scopes
  // model ids per class precisely so that only intentional sharing holds).
  const QueryFingerprint fp_a = FingerprintQuery(db.scheme(), mask, "shared");
  const QueryFingerprint fp_b =
      FingerprintQuery(permuted.scheme(), permuted.scheme().full_mask(),
                       "shared");
  ASSERT_EQ(fp_a.key, fp_b.key);

  const AdaptiveResult cold = OptimizeAdaptive(engine, mask);
  PlanCache cache;
  cache.Insert(fp_a, cold.plan.strategy, EntryInit(cold.plan.cost));

  const std::optional<CachedPlan> hit = cache.Lookup(fp_b);
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->strategy.IsValid());
  EXPECT_EQ(hit->strategy.mask(), permuted.scheme().full_mask());
  // Same data, so the transported plan costs the same in the twin's space.
  EXPECT_EQ(TauCost(hit->strategy, permuted_engine), cold.plan.cost);
}

// Acyclic entries carry the GYO join tree through the cache: the tree
// comes back in the inquirer's index space and still validates against
// the inquirer's scheme.
TEST(PlanCacheDifferentialTest, JoinTreeRoundTripsThroughTheCache) {
  const Database db = ShapedDatabase(QueryShape::kStar, 6, 17);
  CostEngine engine(&db);
  const RelMask mask = db.scheme().full_mask();
  const QueryFingerprint fp = FingerprintQuery(db.scheme(), mask, "tree");

  AdaptiveOptions options;
  options.acyclic_min_input_rows = 0;
  const AdaptiveResult cold = OptimizeAdaptive(engine, mask, options);
  ASSERT_EQ(cold.tier, OptimizerTier::kAcyclic);
  ASSERT_TRUE(cold.acyclic.has_value());

  PlanCache cache;
  cache.Insert(fp, cold.plan.strategy,
               EntryInit(cold.plan.cost, &cold.acyclic->tree));
  const std::optional<CachedPlan> hit = cache.Lookup(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->acyclic);
  EXPECT_EQ(hit->join_tree.parent, cold.acyclic->tree.parent);
  EXPECT_TRUE(hit->join_tree.IsValidFor(db.scheme()));

  // Entries inserted without a tree stay non-acyclic on the way out.
  const QueryFingerprint fp_plain =
      FingerprintQuery(db.scheme(), mask, "plain");
  cache.Insert(fp_plain, cold.plan.strategy, EntryInit(cold.plan.cost));
  const std::optional<CachedPlan> plain = cache.Lookup(fp_plain);
  ASSERT_TRUE(plain.has_value());
  EXPECT_FALSE(plain->acyclic);
  EXPECT_TRUE(plain->join_tree.parent.empty());
}

// The join tree transports across isomorphic schemes like the strategy
// does: cached under one relation order, served under the reverse order,
// it must still be a valid join tree for the inquirer's scheme.
TEST(PlanCacheDifferentialTest, JoinTreeTransfersAcrossIsomorphicSchemes) {
  const Database db = ShapedDatabase(QueryShape::kChain, 7, 23);
  CostEngine engine(&db);
  const RelMask mask = db.scheme().full_mask();

  std::vector<Schema> rev_schemes(db.scheme().schemes());
  std::reverse(rev_schemes.begin(), rev_schemes.end());
  const DatabaseScheme permuted(std::move(rev_schemes));

  const QueryFingerprint fp_a = FingerprintQuery(db.scheme(), mask, "iso");
  const QueryFingerprint fp_b =
      FingerprintQuery(permuted, permuted.full_mask(), "iso");
  ASSERT_EQ(fp_a.key, fp_b.key);

  AdaptiveOptions options;
  options.acyclic_min_input_rows = 0;
  const AdaptiveResult cold = OptimizeAdaptive(engine, mask, options);
  ASSERT_EQ(cold.tier, OptimizerTier::kAcyclic);

  PlanCache cache;
  cache.Insert(fp_a, cold.plan.strategy,
               EntryInit(cold.plan.cost, &cold.acyclic->tree));
  const std::optional<CachedPlan> hit = cache.Lookup(fp_b);
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->acyclic);
  ASSERT_EQ(hit->join_tree.parent.size(), 7u);
  EXPECT_TRUE(hit->join_tree.IsValidFor(permuted));
}

TEST(PlanCacheTest, EvictsLruUnderByteBudgetButKeepsNewest) {
  PlanCacheOptions options;
  options.max_bytes = 2048;  // a handful of entries
  options.shard_count = 1;   // deterministic LRU order
  PlanCache cache(options);

  const DatabaseScheme scheme = MakeShapedScheme(QueryShape::kChain, 4);
  const Strategy plan = Strategy::LeftDeep({0, 1, 2, 3});
  std::vector<QueryFingerprint> fps;
  for (int i = 0; i < 64; ++i) {
    fps.push_back(FingerprintQuery(scheme, scheme.full_mask(),
                                   "model-" + std::to_string(i)));
    cache.Insert(fps.back(), plan, EntryInit(static_cast<uint64_t>(i)));
  }
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 64u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.entries + stats.evictions, 64u);
  EXPECT_LE(cache.bytes(), options.max_bytes);

  // The newest insert must never have been the eviction victim.
  const std::optional<CachedPlan> newest = cache.Lookup(fps.back());
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->cost, 63u);
  // The oldest is long gone.
  EXPECT_FALSE(cache.Lookup(fps.front()).has_value());
}

TEST(PlanCacheTest, OversizedEntryIsStillAccepted) {
  PlanCacheOptions options;
  options.max_bytes = 1;  // smaller than any entry
  options.shard_count = 1;
  PlanCache cache(options);
  const DatabaseScheme scheme = MakeShapedScheme(QueryShape::kChain, 3);
  const QueryFingerprint fp =
      FingerprintQuery(scheme, scheme.full_mask(), "m");
  cache.Insert(fp, Strategy::LeftDeep({0, 1, 2}), EntryInit(5));
  const std::optional<CachedPlan> hit = cache.Lookup(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->cost, 5u);
}

TEST(PlanCacheTest, CollidingHashesResolveByFullKey) {
  PlanCacheOptions options;
  options.collide_all_hashes_for_test = true;
  options.shard_count = 4;  // all entries still land in one shard
  PlanCache cache(options);

  const DatabaseScheme scheme = MakeShapedScheme(QueryShape::kChain, 3);
  const Strategy plan = Strategy::LeftDeep({0, 1, 2});
  std::vector<QueryFingerprint> fps;
  for (int i = 0; i < 8; ++i) {
    fps.push_back(FingerprintQuery(scheme, scheme.full_mask(),
                                   "collide-" + std::to_string(i)));
    cache.Insert(fps.back(), plan, EntryInit(static_cast<uint64_t>(100 + i)));
  }
  for (int i = 0; i < 8; ++i) {
    const std::optional<CachedPlan> hit = cache.Lookup(fps[i]);
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(hit->cost, static_cast<uint64_t>(100 + i)) << i;
  }
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 8u);
  EXPECT_EQ(stats.entries, 8u);
}

TEST(PlanCacheTest, ReinsertReplacesInsteadOfDuplicating) {
  PlanCache cache;
  const DatabaseScheme scheme = MakeShapedScheme(QueryShape::kChain, 3);
  const QueryFingerprint fp =
      FingerprintQuery(scheme, scheme.full_mask(), "m");
  cache.Insert(fp, Strategy::LeftDeep({0, 1, 2}), EntryInit(1));
  cache.Insert(fp, Strategy::LeftDeep({2, 1, 0}), EntryInit(2));
  EXPECT_EQ(cache.entries(), 1u);
  const std::optional<CachedPlan> hit = cache.Lookup(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->cost, 2u);
}

TEST(PlanCacheTest, ConcurrentMixedTrafficIsSafe) {
  PlanCache cache;
  const DatabaseScheme scheme = MakeShapedScheme(QueryShape::kStar, 5);
  std::vector<QueryFingerprint> fps;
  for (int i = 0; i < 16; ++i) {
    fps.push_back(FingerprintQuery(scheme, scheme.full_mask(),
                                   "c-" + std::to_string(i)));
  }
  const Strategy plan = Strategy::LeftDeep({0, 1, 2, 3, 4});
  ThreadPool pool(3);
  pool.ParallelFor(512, [&](int64_t i) {
    const QueryFingerprint& fp = fps[static_cast<size_t>(i) % fps.size()];
    if (i % 3 == 0) {
      cache.Insert(fp, plan, EntryInit(static_cast<uint64_t>(i)));
    } else {
      const std::optional<CachedPlan> hit = cache.Lookup(fp);
      if (hit.has_value()) {
        EXPECT_TRUE(hit->strategy.IsValid());
      }
    }
  });
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 512u - 512u / 3 - 1);
  EXPECT_LE(stats.entries, 16u);
}

}  // namespace
}  // namespace taujoin
