// WorkloadDriver contracts: the workload line format parses (and rejects)
// correctly, cached runs hit for every class repeat with costs equal to
// the cold optimize, the adaptive optimizer escalates by query size, and
// the report's populations add up.
#include "serve/workload_driver.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "optimize/adaptive.h"
#include "serve/plan_cache.h"

namespace taujoin {
namespace {

TEST(QueryClassSpecTest, ParsesWellFormedLines) {
  const StatusOr<QueryClassSpec> spec =
      QueryClassSpec::Parse("star,7,64,8,1.5,42");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->shape, QueryShape::kStar);
  EXPECT_EQ(spec->relation_count, 7);
  EXPECT_EQ(spec->rows_per_relation, 64);
  EXPECT_EQ(spec->join_domain, 8);
  EXPECT_DOUBLE_EQ(spec->join_skew, 1.5);
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_EQ(spec->Key(), "star/n7/r64/d8/z1.50/s42");

  // Whitespace-tolerant.
  EXPECT_TRUE(QueryClassSpec::Parse("  chain , 4 , 32 , 4 , 0 , 1 ").ok());
}

TEST(QueryClassSpecTest, RejectsMalformedLines) {
  const std::vector<std::string> bad = {
      "",                        // empty
      "star,7,64,8,1.5",         // too few fields
      "star,7,64,8,1.5,42,9",    // too many fields
      "blob,7,64,8,1.5,42",      // unknown shape
      "star,1,64,8,1.5,42",      // n < 2
      "cycle,2,64,8,0,42",       // cycle needs n >= 3
      "star,7,0,8,1.5,42",       // zero rows
      "star,7,64,0,1.5,42",      // zero domain
      "star,7,64,8,-1,42",       // negative skew
      "star,7x,64,8,0,42",       // trailing garbage in a number
      "star,7,64,8,0,-3",        // negative seed
      "star,99,64,8,0,42",       // n over the per-query cap
  };
  for (const std::string& line : bad) {
    EXPECT_FALSE(QueryClassSpec::Parse(line).ok()) << line;
  }
}

TEST(LoadWorkloadTest, SkipsCommentsAndReportsLineNumbers) {
  std::istringstream good(
      "# header\n"
      "\n"
      "chain,4,32,4,0,1\n"
      "  # indented comment\n"
      "star,5,32,4,0,2\n");
  const StatusOr<std::vector<QueryClassSpec>> stream = LoadWorkload(good);
  ASSERT_TRUE(stream.ok());
  ASSERT_EQ(stream->size(), 2u);
  EXPECT_EQ((*stream)[0].shape, QueryShape::kChain);
  EXPECT_EQ((*stream)[1].shape, QueryShape::kStar);

  std::istringstream bad("chain,4,32,4,0,1\nbogus line\n");
  const StatusOr<std::vector<QueryClassSpec>> err = LoadWorkload(bad);
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("line 2"), std::string::npos)
      << err.status().ToString();
}

TEST(LatencySummaryTest, NearestRankPercentiles) {
  LatencySummary summary =
      LatencySummary::FromSamples({50, 10, 40, 20, 30});
  EXPECT_EQ(summary.count, 5u);
  EXPECT_EQ(summary.p50_ns, 30u);
  EXPECT_EQ(summary.p95_ns, 50u);
  EXPECT_EQ(summary.p99_ns, 50u);
  EXPECT_EQ(summary.max_ns, 50u);
  EXPECT_EQ(summary.mean_ns, 30u);

  const LatencySummary empty = LatencySummary::FromSamples({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.p50_ns, 0u);
}

std::vector<QueryClassSpec> RepeatedStream() {
  QueryClassSpec chain;
  chain.shape = QueryShape::kChain;
  chain.relation_count = 5;
  chain.rows_per_relation = 16;
  chain.join_domain = 4;
  chain.seed = 11;
  QueryClassSpec star = chain;
  star.shape = QueryShape::kStar;
  star.seed = 12;
  std::vector<QueryClassSpec> stream;
  for (int i = 0; i < 10; ++i) {
    stream.push_back(chain);
    stream.push_back(star);
  }
  return stream;
}

TEST(WorkloadDriverTest, UncachedRunIsAllMisses) {
  WorkloadDriver driver;  // no cache
  const WorkloadReport report = driver.Run(RepeatedStream());
  EXPECT_EQ(report.queries, 20u);
  EXPECT_EQ(report.classes, 2u);
  EXPECT_EQ(report.cache_hits, 0u);
  EXPECT_EQ(report.cache_misses, 20u);
  EXPECT_EQ(report.optimize_warm.count, 0u);
  EXPECT_EQ(report.optimize_cold.count, 20u);
  for (const QueryOutcome& outcome : driver.outcomes()) {
    EXPECT_FALSE(outcome.cache_hit);
    EXPECT_GT(outcome.cost, 0u);
  }
}

TEST(WorkloadDriverTest, CachedRunHitsEveryRepeatWithEqualCost) {
  const std::vector<QueryClassSpec> stream = RepeatedStream();

  WorkloadDriver cold_driver;
  const WorkloadReport cold = cold_driver.Run(stream);

  PlanCache cache;
  WorkloadDriverOptions options;
  options.cache = &cache;
  WorkloadDriver driver(options);
  const WorkloadReport warm = driver.Run(stream);

  EXPECT_EQ(warm.cache_misses, 2u);  // one per class
  EXPECT_EQ(warm.cache_hits, 18u);
  EXPECT_EQ(warm.optimize_warm.count, 18u);
  EXPECT_EQ(warm.cache_hits + warm.cache_misses, warm.queries);

  // Hit or miss, every outcome of one class carries the same cost, and it
  // matches the uncached run's cost for that class.
  ASSERT_EQ(driver.outcomes().size(), cold_driver.outcomes().size());
  for (size_t i = 0; i < driver.outcomes().size(); ++i) {
    EXPECT_EQ(driver.outcomes()[i].cost, cold_driver.outcomes()[i].cost)
        << "query " << i;
  }
}

TEST(WorkloadDriverTest, CachedCostsStableAcrossThreadCounts) {
  const std::vector<QueryClassSpec> stream = RepeatedStream();
  std::vector<uint64_t> baseline;
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads - 1);
    PlanCache cache;
    WorkloadDriverOptions options;
    options.cache = &cache;
    options.parallel.threads = threads;
    options.parallel.pool = &pool;
    WorkloadDriver driver(options);
    driver.Run(stream);
    std::vector<uint64_t> costs;
    for (const QueryOutcome& outcome : driver.outcomes()) {
      costs.push_back(outcome.cost);
    }
    if (baseline.empty()) {
      baseline = costs;
    } else {
      EXPECT_EQ(costs, baseline) << "threads=" << threads;
    }
  }
}

TEST(WorkloadDriverTest, AdaptiveTierMatchesQuerySize) {
  QueryClassSpec small;  // n = 5 ≤ exhaustive_max
  small.shape = QueryShape::kChain;
  small.relation_count = 5;
  small.rows_per_relation = 8;
  small.join_domain = 4;
  small.seed = 21;
  QueryClassSpec mid = small;  // n = 10: DPccp territory
  mid.relation_count = 10;
  mid.seed = 22;
  QueryClassSpec large = mid;  // n = 16 > dp_max: heuristic tiers only
  large.relation_count = 16;
  large.seed = 23;

  WorkloadDriver driver;
  driver.Run({small, mid, large});
  ASSERT_EQ(driver.outcomes().size(), 3u);
  EXPECT_EQ(driver.outcomes()[0].tier, OptimizerTier::kExhaustive);
  EXPECT_EQ(driver.outcomes()[1].tier, OptimizerTier::kDpCcp);
  EXPECT_TRUE(driver.outcomes()[2].tier == OptimizerTier::kGreedy ||
              driver.outcomes()[2].tier == OptimizerTier::kIkkbz);

  const WorkloadReport report = driver.Run({small, mid, large});
  EXPECT_EQ(report.tier_counts.at("exhaustive"), 1u);
  EXPECT_EQ(report.tier_counts.at("dpccp"), 1u);
}

TEST(WorkloadDriverTest, ExecuteRecordsExecutionLatencies) {
  PlanCache cache;
  WorkloadDriverOptions options;
  options.cache = &cache;
  options.execute = true;
  WorkloadDriver driver(options);
  QueryClassSpec spec;
  spec.relation_count = 4;
  spec.rows_per_relation = 8;
  spec.join_domain = 4;
  spec.seed = 31;
  const WorkloadReport report = driver.Run({spec, spec, spec});
  EXPECT_EQ(report.execute.count, 3u);
  EXPECT_GT(report.execute.max_ns, 0u);
}

TEST(ServeSizeModelTest, NamesRoundTrip) {
  for (const ServeSizeModel model :
       {ServeSizeModel::kExact, ServeSizeModel::kIndependence,
        ServeSizeModel::kSketch, ServeSizeModel::kSimpliSquared}) {
    const StatusOr<ServeSizeModel> parsed =
        ParseServeSizeModel(ServeSizeModelToString(model));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, model);
  }
  EXPECT_FALSE(ParseServeSizeModel("psychic").ok());
}

uint64_t CounterValue(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [counter, value] : snap.counters) {
    if (counter == name) return value;
  }
  return 0;
}

// The acceptance criterion of the estimate-driven cold path: a cache-miss
// query plans end to end without invoking a single counting kernel — the
// data pass happened once, at ingest.
TEST(WorkloadDriverTest, SketchColdPathPlansWithoutCountingKernels) {
  WorkloadDriver driver;  // default: kSketch, no cache — every query cold
  const std::vector<QueryClassSpec> stream = RepeatedStream();

  SetMetricsEnabledForTest(true);
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricsSnapshot before = registry.Snapshot();
  const WorkloadReport report = driver.Run(stream);
  const MetricsSnapshot after = registry.Snapshot();
  SetMetricsEnabledForTest(false);

  EXPECT_EQ(report.cache_misses, stream.size());
  EXPECT_EQ(report.size_model, "sketch");
  // Every query planned...
  EXPECT_EQ(CounterValue(after, "serve.driver.queries") -
                CounterValue(before, "serve.driver.queries"),
            stream.size());
  // ...and ingest built statistics...
  EXPECT_GT(CounterValue(after, "stats.relations_built"),
            CounterValue(before, "stats.relations_built"));
  // ...but no plan ever touched the data: zero counting kernels, zero
  // cost-engine τ computations, zero materializing joins.
  EXPECT_EQ(CounterValue(after, "kernel.count_natural_join.calls"),
            CounterValue(before, "kernel.count_natural_join.calls"));
  EXPECT_EQ(CounterValue(after, "kernel.natural_join.calls"),
            CounterValue(before, "kernel.natural_join.calls"));
  EXPECT_EQ(CounterValue(after, "cost_engine.tau_counted"),
            CounterValue(before, "cost_engine.tau_counted"));
  for (const QueryOutcome& outcome : driver.outcomes()) {
    EXPECT_GT(outcome.cost, 0u);
    EXPECT_EQ(outcome.plan_ns, outcome.optimize_ns);
  }
}

TEST(WorkloadDriverTest, ExactModelRestoresEngineDrivenPlanning) {
  WorkloadDriverOptions options;
  options.size_model = ServeSizeModel::kExact;
  WorkloadDriver driver(options);

  SetMetricsEnabledForTest(true);
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricsSnapshot before = registry.Snapshot();
  const WorkloadReport report = driver.Run(RepeatedStream());
  const MetricsSnapshot after = registry.Snapshot();
  SetMetricsEnabledForTest(false);

  EXPECT_EQ(report.size_model, "exact");
  EXPECT_GT(CounterValue(after, "cost_engine.tau_counted"),
            CounterValue(before, "cost_engine.tau_counted"));
}

TEST(WorkloadDriverTest, FingerprintsScopePlansToTheSizeModel) {
  // One shared cache, two drivers differing only in size model: the
  // second driver must not be served the first driver's plans.
  const std::vector<QueryClassSpec> stream = RepeatedStream();
  PlanCache cache;

  WorkloadDriverOptions sketch_options;
  sketch_options.cache = &cache;
  sketch_options.size_model = ServeSizeModel::kSketch;
  WorkloadDriver sketch_driver(sketch_options);
  const WorkloadReport sketch_report = sketch_driver.Run(stream);
  EXPECT_EQ(sketch_report.cache_misses, 2u);

  WorkloadDriverOptions exact_options;
  exact_options.cache = &cache;
  exact_options.size_model = ServeSizeModel::kExact;
  WorkloadDriver exact_driver(exact_options);
  const WorkloadReport exact_report = exact_driver.Run(stream);
  EXPECT_EQ(exact_report.cache_misses, 2u);  // no cross-model hits
  EXPECT_EQ(exact_report.cache_hits, 18u);
}

TEST(WorkloadDriverTest, DataTimeChargesIngestToTheBuildingQuery) {
  WorkloadDriver driver;
  const WorkloadReport report = driver.Run(RepeatedStream());
  // Exactly one query per class paid the ingest (generation + stats).
  uint64_t charged = 0;
  for (const QueryOutcome& outcome : driver.outcomes()) {
    if (outcome.data_ns > 0) ++charged;
  }
  EXPECT_EQ(charged, report.classes);
  EXPECT_EQ(report.data.count, report.queries);
  EXPECT_GT(report.data.max_ns, 0u);
  EXPECT_EQ(report.plan.count, report.queries);
}

TEST(WorkloadDriverTest, ReportSerializesToJson) {
  PlanCache cache;
  WorkloadDriverOptions options;
  options.cache = &cache;
  WorkloadDriver driver(options);
  const WorkloadReport report = driver.Run(RepeatedStream());
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"queries\": 20"), std::string::npos) << json;
  EXPECT_NE(json.find("\"optimize_warm\""), std::string::npos);
  EXPECT_NE(json.find("\"tiers\""), std::string::npos);
  const std::string text = report.ToString();
  EXPECT_NE(text.find("cache: 18 hits"), std::string::npos) << text;
}

TEST(WorkloadDriverTest, AcyclicClassesRideTheAcyclicTier) {
  // Rows large enough to clear the default acyclic_min_input_rows guard
  // (6 relations x 64 rows = 384 > 256).
  QueryClassSpec chain;
  chain.shape = QueryShape::kChain;
  chain.relation_count = 6;
  chain.rows_per_relation = 64;
  chain.join_domain = 16;
  chain.seed = 41;
  QueryClassSpec cycle = chain;  // cyclic control
  cycle.shape = QueryShape::kCycle;
  cycle.seed = 42;

  PlanCache cache;
  WorkloadDriverOptions options;
  options.cache = &cache;
  options.execute = true;
  WorkloadDriver driver(options);
  const WorkloadReport report =
      driver.Run({chain, cycle, chain, cycle, chain});

  ASSERT_EQ(driver.outcomes().size(), 5u);
  // Chain queries (0, 2, 4) ride the tier — the miss and both cache hits.
  for (const size_t i : {size_t{0}, size_t{2}, size_t{4}}) {
    EXPECT_TRUE(driver.outcomes()[i].acyclic) << "query " << i;
  }
  EXPECT_EQ(driver.outcomes()[0].tier, OptimizerTier::kAcyclic);
  for (const size_t i : {size_t{1}, size_t{3}}) {
    EXPECT_FALSE(driver.outcomes()[i].acyclic) << "query " << i;
    EXPECT_EQ(driver.outcomes()[i].reduce_ns, 0u);
  }
  EXPECT_EQ(report.acyclic_queries, 3u);
  EXPECT_EQ(report.tier_counts.at("acyclic"), 1u);  // the one cold miss
  // The reduce split covers exactly the executed acyclic queries.
  EXPECT_EQ(report.reduce.count, 3u);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"acyclic_queries\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"reduce\""), std::string::npos) << json;
}

TEST(WorkloadDriverTest, CyclicClassesRideTheWcojTierWhenEnabled) {
  QueryClassSpec cycle;
  cycle.shape = QueryShape::kCycle;
  cycle.relation_count = 5;
  cycle.rows_per_relation = 64;
  cycle.join_domain = 16;
  cycle.seed = 44;
  QueryClassSpec chain = cycle;  // acyclic control: keeps its own tier
  chain.shape = QueryShape::kChain;
  chain.seed = 45;

  PlanCache cache;
  WorkloadDriverOptions options;
  options.cache = &cache;
  options.execute = true;
  options.adaptive.enable_wcoj = true;
  WorkloadDriver driver(options);
  const WorkloadReport report =
      driver.Run({cycle, chain, cycle, chain, cycle});

  ASSERT_EQ(driver.outcomes().size(), 5u);
  // Cycle queries (0, 2, 4) ride the wcoj tier — the miss and both cache
  // hits; the acyclic guard keeps chains on the Yannakakis tier.
  for (const size_t i : {size_t{0}, size_t{2}, size_t{4}}) {
    EXPECT_TRUE(driver.outcomes()[i].wcoj) << "query " << i;
    EXPECT_FALSE(driver.outcomes()[i].acyclic) << "query " << i;
  }
  EXPECT_EQ(driver.outcomes()[0].tier, OptimizerTier::kWcoj);
  for (const size_t i : {size_t{1}, size_t{3}}) {
    EXPECT_FALSE(driver.outcomes()[i].wcoj) << "query " << i;
  }
  EXPECT_EQ(report.wcoj_queries, 3u);
  EXPECT_EQ(report.tier_counts.at("wcoj"), 1u);  // the one cold miss
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"wcoj_queries\": 3"), std::string::npos) << json;
}

TEST(WorkloadDriverTest, AcyclicRouteMatchesBinaryExecutionCardinality) {
  // The same class driven with the tier on and off must agree on what it
  // computes; outcomes can't expose row sets, so compare via the acyclic
  // flag and the workload stream format's `acyclic` shape round-trip.
  const StatusOr<QueryClassSpec> parsed =
      QueryClassSpec::Parse("acyclic,6,64,16,0.0,43");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->shape, QueryShape::kAcyclic);

  WorkloadDriverOptions on;
  on.execute = true;
  WorkloadDriver with_tier(on);
  with_tier.Run({*parsed});
  ASSERT_EQ(with_tier.outcomes().size(), 1u);
  EXPECT_TRUE(with_tier.outcomes()[0].acyclic);

  WorkloadDriverOptions off = on;
  off.adaptive.enable_acyclic = false;
  WorkloadDriver without_tier(off);
  without_tier.Run({*parsed});
  ASSERT_EQ(without_tier.outcomes().size(), 1u);
  EXPECT_FALSE(without_tier.outcomes()[0].acyclic);
  // Identical class data → identical exact plan costs regardless of route
  // (the acyclic plan's cost is total input size, so compare only that the
  // binary route produced a real plan).
  EXPECT_GT(without_tier.outcomes()[0].cost, 0u);
}

}  // namespace
}  // namespace taujoin
