// Network service contracts: malformed / truncated / oversized frames are
// rejected with typed errors and never crash the server, admission control
// sheds load with OVERLOADED once the bounded shard queue fills (made
// deterministic by parking workers on a ServerGate), graceful drain
// answers every in-flight query before the drain response goes out, and a
// loopback round-trip returns exactly what a direct WorkloadDriver run
// produces (bit-identical plan text, same cost and route).
#include "serve/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "serve/wire.h"
#include "serve/workload_driver.h"

namespace taujoin {
namespace {

/// Minimal blocking loopback client: framed sends, framed receives with a
/// receive timeout so a server bug fails the test instead of hanging it.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~TestClient() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void SendRaw(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  }

  void Send(const std::string& payload) {
    std::string framed;
    AppendFrame(framed, payload);
    SendRaw(framed);
  }

  /// Next response payload; nullopt on timeout or server-side close.
  std::optional<std::string> Recv() {
    std::string frame;
    for (;;) {
      if (decoder_.Next(&frame) == FrameDecoder::Result::kFrame) return frame;
      char buf[4096];
      ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) return std::nullopt;
      decoder_.Feed(buf, static_cast<size_t>(n));
    }
  }

  /// Recv + strict JSON parse (most responses; not `metrics`).
  std::optional<JsonValue> RecvJson() {
    std::optional<std::string> payload = Recv();
    if (!payload.has_value()) return std::nullopt;
    StatusOr<JsonValue> doc = ParseJson(*payload);
    EXPECT_TRUE(doc.ok()) << *payload;
    if (!doc.ok()) return std::nullopt;
    return *doc;
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

std::string ErrorCode(const JsonValue& response) {
  const JsonValue* error = response.Find("error");
  return error == nullptr ? "" : error->GetString("code");
}

TEST(ServerTest, PingStatsAndUnknownOp) {
  ServerOptions options;
  options.shard_count = 2;
  options.execute = false;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  TestClient client(server.port());
  client.Send("{\"op\":\"ping\",\"id\":7}");
  std::optional<JsonValue> pong = client.RecvJson();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->GetBool("ok"));
  EXPECT_TRUE(pong->GetBool("pong"));
  EXPECT_EQ(pong->Find("id")->number_text, "7");

  client.Send("{\"op\":\"stats\"}");
  std::optional<JsonValue> stats = client.RecvJson();
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->GetBool("ok"));
  const JsonValue* body = stats->Find("stats");
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->Find("shards")->number_text, "2");

  client.Send("{\"op\":\"frobnicate\"}");
  std::optional<JsonValue> unknown = client.RecvJson();
  ASSERT_TRUE(unknown.has_value());
  EXPECT_FALSE(unknown->GetBool("ok"));
  EXPECT_EQ(ErrorCode(*unknown), "UNKNOWN_OP");
}

TEST(ServerTest, MalformedFramesGetTypedErrorsAndServerSurvives) {
  ServerOptions options;
  options.shard_count = 1;
  options.execute = false;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  const char* bad[] = {
      "not json at all",
      "{\"op\":}",
      "[1,2,3]",              // well-formed JSON, but not an object
      "{\"noop\":true}",      // object without "op"
      "{\"op\":12}",          // op is not a string
      "{\"op\":\"query\"}",   // query without class
      "{\"op\":\"query\",\"class\":42}",
  };
  for (const char* payload : bad) {
    client.Send(payload);
    std::optional<JsonValue> response = client.RecvJson();
    ASSERT_TRUE(response.has_value()) << payload;
    EXPECT_FALSE(response->GetBool("ok")) << payload;
    EXPECT_EQ(ErrorCode(*response), "MALFORMED") << payload;
  }
  client.Send("{\"op\":\"query\",\"class\":\"pretzel,4,8,4,0.0,1\"}");
  std::optional<JsonValue> bad_class = client.RecvJson();
  ASSERT_TRUE(bad_class.has_value());
  EXPECT_EQ(ErrorCode(*bad_class), "BAD_CLASS");

  // The connection and server both survived all of it.
  client.Send("{\"op\":\"ping\"}");
  std::optional<JsonValue> pong = client.RecvJson();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->GetBool("ok"));
  EXPECT_EQ(server.stats().malformed, 7u);
}

TEST(ServerTest, TruncatedFrameThenDisconnectIsHarmless) {
  ServerOptions options;
  options.shard_count = 1;
  options.execute = false;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  {
    TestClient client(server.port());
    // Announce 100 bytes, deliver 3, hang up mid-frame.
    const unsigned char prefix[4] = {0, 0, 0, 100};
    client.SendRaw(std::string(reinterpret_cast<const char*>(prefix), 4));
    client.SendRaw("abc");
  }
  // A fresh connection is served normally.
  TestClient again(server.port());
  again.Send("{\"op\":\"ping\"}");
  std::optional<JsonValue> pong = again.RecvJson();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->GetBool("ok"));
  EXPECT_EQ(server.stats().frames_received, 1u);  // only the ping
}

TEST(ServerTest, OversizedFrameIsRejectedAndConnectionClosed) {
  ServerOptions options;
  options.shard_count = 1;
  options.execute = false;
  options.max_frame_bytes = 64;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  client.Send(std::string(65, 'x'));
  std::optional<JsonValue> response = client.RecvJson();
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->GetBool("ok"));
  EXPECT_EQ(ErrorCode(*response), "OVERSIZED");
  // Framing past a bad prefix is unrecoverable: the server hangs up.
  EXPECT_FALSE(client.Recv().has_value());
  EXPECT_EQ(server.stats().oversized, 1u);

  // A frame at exactly the limit is fine (ping padded via a spare field).
  TestClient ok_client(server.port());
  std::string payload = "{\"op\":\"ping\",\"pad\":\"";
  payload += std::string(64 - payload.size() - 2, 'p');
  payload += "\"}";
  ASSERT_EQ(payload.size(), 64u);
  ok_client.Send(payload);
  std::optional<JsonValue> pong = ok_client.RecvJson();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->GetBool("ok"));
}

TEST(ServerTest, BackpressureShedsTypedOverloadAndRecovers) {
  ServerGate gate;
  gate.Close();
  ServerOptions options;
  options.shard_count = 1;
  options.queue_depth = 2;
  options.execute = false;
  options.worker_gate_for_test = &gate;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  // With the worker parked, capacity is queue_depth (2) plus at most one
  // job already popped: of 7 queries at least 4 must be shed. Every query
  // gets exactly one response; rejections are synchronous from the I/O
  // thread, so the first 4 responses arrive while the gate is still
  // closed and must all be OVERLOADED.
  constexpr int kQueries = 7;
  TestClient client(server.port());
  for (int i = 0; i < kQueries; ++i) {
    client.Send("{\"op\":\"query\",\"class\":\"chain,4,16,4,0.0,9\",\"id\":" +
                std::to_string(i) + "}");
  }
  int rejected = 0;
  int completed = 0;
  for (int i = 0; i < kQueries; ++i) {
    std::optional<JsonValue> response = client.RecvJson();
    ASSERT_TRUE(response.has_value());
    if (response->GetBool("ok")) {
      ++completed;
    } else {
      EXPECT_EQ(ErrorCode(*response), "OVERLOADED");
      ++rejected;
    }
    if (i == 3) {
      EXPECT_EQ(rejected, 4);  // parked worker can't have answered yet
      gate.Open();
    }
  }
  EXPECT_GE(rejected, 4);
  EXPECT_LE(rejected, 5);
  EXPECT_EQ(completed + rejected, kQueries);
  // The worker writes a query's response before bumping the completed
  // counter, so the client can observe the last response a moment before
  // the count catches up — wait it out instead of racing it.
  ServerStats stats = server.stats();
  for (int spin = 0;
       stats.queries_completed != stats.queries_admitted && spin < 1000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = server.stats();
  }
  EXPECT_EQ(stats.rejected_overload, static_cast<uint64_t>(rejected));
  EXPECT_EQ(stats.queries_admitted, static_cast<uint64_t>(completed));
  EXPECT_EQ(stats.queries_completed, stats.queries_admitted);
}

TEST(ServerTest, DrainCompletesInFlightThenRefusesNewWork) {
  ServerGate gate;
  gate.Close();
  ServerOptions options;
  options.shard_count = 1;
  options.queue_depth = 16;
  options.execute = false;
  options.worker_gate_for_test = &gate;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  constexpr int kInFlight = 5;
  for (int i = 0; i < kInFlight; ++i) {
    client.Send("{\"op\":\"query\",\"class\":\"star,4,16,4,0.0,3\",\"id\":" +
                std::to_string(i) + "}");
  }
  client.Send("{\"op\":\"drain\",\"id\":99}");
  // Admission is now closed: further queries get the typed DRAINING error
  // even while the in-flight ones are still parked behind the gate.
  client.Send("{\"op\":\"query\",\"class\":\"star,4,16,4,0.0,3\"}");
  std::optional<JsonValue> refused = client.RecvJson();
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(ErrorCode(*refused), "DRAINING");

  gate.Open();
  // All in-flight queries complete, then (and only then) the drain
  // response arrives.
  int ok_queries = 0;
  bool drained = false;
  for (int i = 0; i < kInFlight + 1; ++i) {
    std::optional<JsonValue> response = client.RecvJson();
    ASSERT_TRUE(response.has_value());
    if (response->GetBool("drained")) {
      drained = true;
      EXPECT_EQ(response->Find("id")->number_text, "99");
      EXPECT_EQ(ok_queries, kInFlight)
          << "drain response overtook an in-flight query";
    } else if (response->GetBool("ok")) {
      ++ok_queries;
    }
  }
  EXPECT_TRUE(drained);
  server.WaitUntilStopped();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_admitted, static_cast<uint64_t>(kInFlight));
  EXPECT_EQ(stats.queries_completed, stats.queries_admitted);
  EXPECT_EQ(stats.rejected_draining, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// The loopback equivalence the serving tier is sold on: a query answered
// over the socket carries exactly the plan, cost, cache-hit flag and route
// a direct in-process WorkloadDriver run produces for the same class under
// the same size model.
TEST(ServerTest, LoopbackRoundTripMatchesDirectDriverBitForBit) {
  const std::vector<std::string> classes = {
      "chain,6,32,8,0.0,41", "star,5,32,8,0.5,42", "cycle,5,32,8,0.0,43",
      "clique,4,32,8,0.0,44"};

  ServerOptions options;
  options.shard_count = 1;  // all classes share one shard-local cache
  options.execute = true;
  options.size_model = ServeSizeModel::kSketch;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  PlanCache direct_cache;
  WorkloadDriverOptions driver_options;
  driver_options.cache = &direct_cache;
  driver_options.size_model = ServeSizeModel::kSketch;
  driver_options.execute = true;
  driver_options.capture_plan = true;
  driver_options.dictionary = std::make_shared<ValueDictionary>();
  driver_options.parallel.threads = 1;
  WorkloadDriver direct(driver_options);

  TestClient client(server.port());
  // Two passes: the first is the cold path (plan + insert), the second must
  // be a cache hit on both sides with the identical plan.
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& cls : classes) {
      client.Send("{\"op\":\"query\",\"class\":" + JsonQuote(cls) +
                  ",\"explain\":true}");
      std::optional<JsonValue> response = client.RecvJson();
      ASSERT_TRUE(response.has_value()) << cls;
      ASSERT_TRUE(response->GetBool("ok")) << cls;

      const StatusOr<QueryClassSpec> spec = QueryClassSpec::Parse(cls);
      ASSERT_TRUE(spec.ok());
      const QueryOutcome expected = direct.ServeOne(*spec);

      EXPECT_EQ(response->GetBool("cache_hit"), expected.cache_hit)
          << cls << " pass=" << pass;
      EXPECT_EQ(response->GetBool("cache_hit"), pass == 1)
          << cls << " pass=" << pass;
      const char* route = expected.acyclic ? "acyclic"
                          : expected.wcoj  ? "wcoj"
                                           : "binary";
      EXPECT_EQ(response->GetString("route"), route) << cls;
      EXPECT_EQ(response->Find("cost")->number_text,
                std::to_string(expected.cost))
          << cls << " pass=" << pass;
      ASSERT_FALSE(expected.plan_text.empty()) << cls;
      EXPECT_EQ(response->GetString("plan"), expected.plan_text)
          << cls << " pass=" << pass;
      EXPECT_EQ(response->GetString("class"), spec->Key()) << cls;
    }
  }
}

TEST(ServerTest, MetricsOpReturnsPrometheusText) {
  SetMetricsEnabledForTest(true);
  ServerOptions options;
  options.shard_count = 1;
  options.execute = false;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  client.Send("{\"op\":\"query\",\"class\":\"chain,4,16,4,0.0,5\"}");
  ASSERT_TRUE(client.RecvJson().has_value());
  client.Send("{\"op\":\"metrics\"}");
  std::optional<std::string> text = client.Recv();
  ASSERT_TRUE(text.has_value());
  EXPECT_NE(text->find("# TYPE taujoin_serve_server_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text->find("taujoin_serve_server_queries_completed_total"),
            std::string::npos);
  EXPECT_NE(text->find("taujoin_serve_server_qps"), std::string::npos);
  EXPECT_NE(
      text->find("taujoin_serve_server_request_ns_seconds{quantile=\"0.99\"}"),
      std::string::npos);
}

TEST(ServerEnvTest, ResolversPreferExplicitThenEnvThenDefault) {
  ResetServerEnvWarningsForTest();
  unsetenv("TAUJOIN_SERVER_SHARDS");
  unsetenv("TAUJOIN_SERVER_QUEUE_DEPTH");
  unsetenv("TAUJOIN_SERVER_MAX_FRAME");
  EXPECT_EQ(ResolveServerShards(3), 3);
  EXPECT_EQ(ResolveServerQueueDepth(9), 9);
  EXPECT_EQ(ResolveServerMaxFrame(1024), 1024u);
  EXPECT_EQ(ResolveServerQueueDepth(0), 256);
  EXPECT_EQ(ResolveServerMaxFrame(0), kDefaultMaxFrameBytes);
  EXPECT_GE(ResolveServerShards(0), 1);

  setenv("TAUJOIN_SERVER_QUEUE_DEPTH", "77", 1);
  EXPECT_EQ(ResolveServerQueueDepth(0), 77);
  EXPECT_EQ(ResolveServerQueueDepth(5), 5);  // explicit beats env

  // Strict parsing: trailing garbage falls back to the default.
  setenv("TAUJOIN_SERVER_QUEUE_DEPTH", "77abc", 1);
  EXPECT_EQ(ResolveServerQueueDepth(0), 256);
  unsetenv("TAUJOIN_SERVER_QUEUE_DEPTH");
}

}  // namespace
}  // namespace taujoin
