// Wire substrate contracts: frame round-trips survive arbitrary chunking,
// an oversized length prefix poisons the decoder before any payload is
// buffered, and the JSON reader enforces the strict grammar (full
// consumption, depth limit, escape validation) the server's admission
// layer depends on to reject malformed frames without crashing.
#include "serve/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace taujoin {
namespace {

TEST(FrameTest, RoundTripsOneFrame) {
  std::string stream;
  AppendFrame(stream, "{\"op\":\"ping\"}");
  ASSERT_EQ(stream.size(), 4u + 13u);
  // Big-endian length prefix.
  EXPECT_EQ(static_cast<unsigned char>(stream[0]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(stream[3]), 13u);

  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  std::string frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame, "{\"op\":\"ping\"}");
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameTest, RoundTripsEmptyPayload) {
  std::string stream;
  AppendFrame(stream, "");
  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  std::string frame = "sentinel";
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame, "");
}

TEST(FrameTest, SurvivesByteAtATimeDelivery) {
  std::string stream;
  AppendFrame(stream, "first");
  AppendFrame(stream, "second payload");
  AppendFrame(stream, "");
  FrameDecoder decoder;
  std::vector<std::string> frames;
  for (const char c : stream) {
    decoder.Feed(&c, 1);
    std::string frame;
    while (decoder.Next(&frame) == FrameDecoder::Result::kFrame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "first");
  EXPECT_EQ(frames[1], "second payload");
  EXPECT_EQ(frames[2], "");
}

TEST(FrameTest, TruncatedFrameStaysPending) {
  std::string stream;
  AppendFrame(stream, "abcdef");
  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size() - 2);  // missing last 2 bytes
  std::string frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore);
  decoder.Feed(stream.data() + stream.size() - 2, 2);
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame, "abcdef");
}

TEST(FrameTest, OversizedAnnouncementPoisonsWithoutBuffering) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  // Announce a 1 GiB payload; only the 4 prefix bytes are ever fed.
  const unsigned char prefix[4] = {0x40, 0x00, 0x00, 0x00};
  decoder.Feed(reinterpret_cast<const char*>(prefix), 4);
  std::string frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kOversized);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);  // nothing retained
  // Poisoned: further input is discarded and the verdict sticks.
  std::string more;
  AppendFrame(more, "tiny");
  decoder.Feed(more.data(), more.size());
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kOversized);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameTest, FrameAtExactLimitIsAccepted) {
  const std::string payload(16, 'x');
  std::string stream;
  AppendFrame(stream, payload);
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  decoder.Feed(stream.data(), stream.size());
  std::string frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame, payload);
}

TEST(JsonTest, ParsesFlatRequestObject) {
  const StatusOr<JsonValue> doc = ParseJson(
      "{\"op\":\"query\",\"class\":\"chain,6,64,8,0.0,42\","
      "\"execute\":true,\"id\":17}");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->GetString("op"), "query");
  EXPECT_EQ(doc->GetString("class"), "chain,6,64,8,0.0,42");
  EXPECT_TRUE(doc->GetBool("execute"));
  const JsonValue* id = doc->Find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->type, JsonValue::Type::kNumber);
  EXPECT_EQ(id->number_text, "17");  // source spelling preserved
}

TEST(JsonTest, ToJsonRoundTripsIdsLosslessly) {
  // 2^60 is not representable as a double; echoing number_text keeps it.
  const StatusOr<JsonValue> doc =
      ParseJson("{\"id\":1152921504606846976}");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("id")->ToJson(), "1152921504606846976");
  EXPECT_EQ(ParseJson("\"a\\\"b\"")->ToJson(), "\"a\\\"b\"");
  EXPECT_EQ(ParseJson("[1,true,null]")->ToJson(), "[1,true,null]");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",
      "{",
      "{\"op\"}",
      "{\"op\":}",
      "{\"op\":\"x\",}",
      "{'op':'x'}",
      "[1,2",
      "{\"a\":1} trailing",
      "nul",
      "truefalse",
      "\"unterminated",
      "\"bad escape \\q\"",
      "\"trunc \\u12\"",
      "\"surrogate \\ud800\"",
      "01",
      "1.",
      "1e",
      "- 1",
      "+1",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseJson(text).ok()) << text;
  }
}

TEST(JsonTest, RejectsBracketBombs) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).ok());
  // Modest nesting stays fine.
  EXPECT_TRUE(ParseJson("[[[[[[[[1]]]]]]]]").ok());
}

TEST(JsonTest, LastDuplicateKeyWins) {
  const StatusOr<JsonValue> doc = ParseJson("{\"a\":1,\"a\":2}");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("a")->number_text, "2");
}

TEST(JsonTest, DecodesEscapes) {
  const StatusOr<JsonValue> doc =
      ParseJson("\"tab\\there\\nand \\u0041 plus \\u00e9\"");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->string_value, "tab\there\nand A plus \xc3\xa9");
}

TEST(JsonTest, QuoteEscapesControlBytes) {
  EXPECT_EQ(JsonQuote("a\"b\\c\nd\x01"), "\"a\\\"b\\\\c\\nd\\u0001\"");
  // Quote → parse is the identity on arbitrary ASCII.
  const std::string original = "mixed \t \"quotes\" and \\slashes\\";
  const StatusOr<JsonValue> back = ParseJson(JsonQuote(original));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->string_value, original);
}

}  // namespace
}  // namespace taujoin
