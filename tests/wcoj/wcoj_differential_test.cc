// Randomized differential test for the worst-case-optimal serving tier:
// Generic Join must be *bit-identical* to itself at every thread count
// (the DESIGN.md §14 determinism contract — parallelism fans out over
// first-level bindings into order-preserving private buffers) and
// *set-identical* to the binary ExecuteStrategy route on every shape,
// cyclic and acyclic alike (row orders differ by construction: GJ
// enumerates in attribute order, the binary pipeline in join order).
//
// Runs under the TSan and ASan/UBSan CI matrices, so a data race or an
// out-of-bounds trie seek fails loudly here.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/trace.h"
#include "optimize/adaptive.h"
#include "relational/morsel.h"
#include "wcoj/generic_join.h"
#include "workload/generator.h"

namespace taujoin {
namespace {

Database MakeDb(QueryShape shape, int n, uint64_t seed, double skew) {
  GeneratorOptions options;
  options.shape = shape;
  options.relation_count = n;
  options.rows_per_relation = 64;
  // domain ≈ rows keeps per-edge growth near 1 so the binary reference
  // stays input-sized even on the larger shapes; cyclic closure then
  // prunes most candidates, which is exactly the regime where GJ's seeks
  // and run bookkeeping get exercised hardest.
  options.join_domain = 64;
  options.join_skew = skew;
  Rng rng(seed);
  return RandomDatabase(options, rng);
}

/// Bit-identity: same schema, same row order, same codes. Relation's
/// operator== is deliberately set-based, so byte comparison goes through
/// the code arena directly.
void ExpectBitIdentical(const Relation& expected, const Relation& actual) {
  ASSERT_EQ(expected.schema(), actual.schema());
  ASSERT_EQ(expected.size(), actual.size());
  EXPECT_EQ(expected.codes(), actual.codes());
}

std::vector<int> ThreadCounts() {
  const int hw =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  return {1, 2, hw};
}

void RunDifferential(QueryShape shape, int n, uint64_t seed,
                     double skew = 0.0) {
  SCOPED_TRACE(testing::Message() << QueryShapeToString(shape) << " n=" << n
                                  << " seed=" << seed);
  const Database db = MakeDb(shape, n, seed, skew);
  const RelMask mask = db.scheme().full_mask();

  // Serial ground truth (threads=1 keeps the whole search on the caller).
  KernelParallelism serial_par;
  serial_par.threads = 1;
  const WcojResult serial = GenericJoinExecute(db, mask, serial_par);

  for (const int threads : ThreadCounts()) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    ThreadPool pool(threads - 1);
    KernelParallelism par;
    par.threads = threads;
    par.pool = &pool;
    const WcojResult parallel = GenericJoinExecute(db, mask, par);
    ExpectBitIdentical(serial.result, parallel.result);
    EXPECT_EQ(serial.partial_tuples, parallel.partial_tuples);
    EXPECT_EQ(serial.attribute_order, parallel.attribute_order);
  }

  // Cross-path agreement: the binary tier ladder's plan, physically
  // executed, must produce the same *set* of rows (order may differ).
  CostEngine engine(&db);
  AdaptiveOptions options;
  options.enable_acyclic = false;
  const AdaptiveResult binary = OptimizeAdaptive(engine, mask, options);
  ASSERT_FALSE(binary.wcoj);  // off by default: the ladder stays binary
  const EvaluationTrace trace = ExecuteStrategy(db, binary.plan.strategy);
  EXPECT_TRUE(serial.result == trace.result)
      << "Generic Join diverges from ExecuteStrategy of "
      << binary.plan.strategy.ToStringWithScheme(db.scheme());
}

TEST(WcojDifferentialTest, Chains) {
  for (int n = 3; n <= 8; ++n) {
    RunDifferential(QueryShape::kChain, n, 7, /*skew=*/0.4);
  }
}

TEST(WcojDifferentialTest, Stars) {
  // Uniform only: on a star every leaf multiplies the center's heavy
  // value, so even mild skew is exponential in n.
  for (int n = 3; n <= 8; ++n) RunDifferential(QueryShape::kStar, n, 11);
}

TEST(WcojDifferentialTest, Cycles) {
  for (int n = 3; n <= 8; ++n) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      RunDifferential(QueryShape::kCycle, n, seed, /*skew=*/0.2);
    }
  }
}

TEST(WcojDifferentialTest, Cliques) {
  // Arity grows with n on cliques (n−1 join attributes + 1 private per
  // relation), so the shapes stay small while still exercising deep tries.
  for (int n = 3; n <= 5; ++n) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      RunDifferential(QueryShape::kClique, n, seed);
    }
  }
}

// The opt-in tier ladder: cyclic schemes take kWcoj, acyclic ones do not.
TEST(WcojDifferentialTest, WcojTierGuardsOnCyclicity) {
  const Database cyclic = MakeDb(QueryShape::kCycle, 4, 3, 0.0);
  CostEngine cyclic_engine(&cyclic);
  AdaptiveOptions options;
  options.enable_wcoj = true;
  const AdaptiveResult took =
      OptimizeAdaptive(cyclic_engine, cyclic.scheme().full_mask(), options);
  EXPECT_TRUE(took.wcoj);
  EXPECT_EQ(took.tier, OptimizerTier::kWcoj);

  const Database acyclic = MakeDb(QueryShape::kChain, 4, 3, 0.0);
  CostEngine acyclic_engine(&acyclic);
  options.enable_acyclic = false;  // force the search ladder, not Yannakakis
  const AdaptiveResult declined =
      OptimizeAdaptive(acyclic_engine, acyclic.scheme().full_mask(), options);
  EXPECT_FALSE(declined.wcoj);
  EXPECT_NE(declined.tier, OptimizerTier::kWcoj);
}

}  // namespace
}  // namespace taujoin
