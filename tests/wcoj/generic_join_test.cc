#include "wcoj/generic_join.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/database.h"
#include "wcoj/trie.h"
#include "workload/generator.h"

namespace taujoin {
namespace {

/// The canonical cyclic query: a triangle R(A,B) ⋈ S(B,C) ⋈ T(A,C).
Database TriangleDb() {
  DatabaseScheme scheme = DatabaseScheme::Parse({"AB", "BC", "AC"});
  Relation r = Relation::FromRowsOrDie(
      {"A", "B"}, {{1, 1}, {1, 2}, {2, 2}, {3, 1}});
  Relation s = Relation::FromRowsOrDie(
      {"B", "C"}, {{1, 5}, {2, 5}, {2, 6}, {3, 7}});
  Relation t = Relation::FromRowsOrDie(
      {"A", "C"}, {{1, 5}, {2, 6}, {2, 5}, {3, 9}});
  return Database::CreateOrDie(scheme, {r, s, t});
}

TEST(GenericJoinTest, TriangleMatchesJoinAll) {
  const Database db = TriangleDb();
  const RelMask mask = db.scheme().full_mask();
  const WcojResult wcoj = GenericJoinExecute(db, mask);
  EXPECT_TRUE(wcoj.result == db.JoinAll(mask))
      << "GJ:\n" << wcoj.result.ToString()
      << "JoinAll:\n" << db.JoinAll(mask).ToString();
  EXPECT_GT(wcoj.seeks, 0u);
}

TEST(GenericJoinTest, SingletonMaskIsTheRelationItself) {
  const Database db = TriangleDb();
  const WcojResult wcoj = GenericJoinExecute(db, SingletonMask(1));
  EXPECT_TRUE(wcoj.result == db.state(1));
  // partial_tuples counts successful bindings at every non-final level;
  // S(B,C) has distinct B values {1, 2, 3}, so exactly three.
  EXPECT_EQ(wcoj.partial_tuples, 3u);
}

TEST(GenericJoinTest, EmptyIntersectionYieldsEmptyResult) {
  DatabaseScheme scheme = DatabaseScheme::Parse({"AB", "BC", "AC"});
  Relation r = Relation::FromRowsOrDie({"A", "B"}, {{1, 1}});
  Relation s = Relation::FromRowsOrDie({"B", "C"}, {{2, 5}});  // B disagrees
  Relation t = Relation::FromRowsOrDie({"A", "C"}, {{1, 5}});
  const Database db = Database::CreateOrDie(scheme, {r, s, t});
  const WcojResult wcoj = GenericJoinExecute(db, db.scheme().full_mask());
  EXPECT_TRUE(wcoj.result.empty());
}

TEST(GenericJoinTest, EmptyMemberYieldsEmptyResult) {
  DatabaseScheme scheme = DatabaseScheme::Parse({"AB", "BC", "AC"});
  Relation r = Relation::FromRowsOrDie({"A", "B"}, {{1, 1}});
  Relation s(Schema::Parse("BC"));  // no rows at all
  Relation t = Relation::FromRowsOrDie({"A", "C"}, {{1, 5}});
  const Database db = Database::CreateOrDie(scheme, {r, s, t});
  const WcojResult wcoj = GenericJoinExecute(db, db.scheme().full_mask());
  EXPECT_TRUE(wcoj.result.empty());
}

// The dictionary assigns codes in arrival order, so feeding values in
// descending order makes raw code order the *reverse* of value order. The
// trie layer's code→rank remap must still intersect by value.
TEST(GenericJoinTest, ArrivalOrderedCodesAreRemappedToValueOrder) {
  DatabaseScheme scheme = DatabaseScheme::Parse({"AB", "BC", "AC"});
  // Values arrive 9, 7, 5, 3, 1 — later (larger) codes mean smaller values.
  Relation r = Relation::FromRowsOrDie(
      {"A", "B"}, {{9, 9}, {7, 7}, {5, 5}, {3, 3}, {1, 1}});
  Relation s = Relation::FromRowsOrDie(
      {"B", "C"}, {{9, 1}, {7, 3}, {5, 5}, {3, 7}, {1, 9}});
  Relation t = Relation::FromRowsOrDie(
      {"A", "C"}, {{9, 1}, {5, 5}, {1, 9}});
  const Database db = Database::CreateOrDie(scheme, {r, s, t});
  const RelMask mask = db.scheme().full_mask();

  // The per-attribute domains really are value-sorted regardless of code
  // arrival order.
  const TrieIndex index = BuildTrieIndex(db, mask);
  const auto& dict = db.dictionary();
  for (const AttributeDomain& domain : index.domains) {
    for (size_t i = 0; i + 1 < domain.sorted_codes.size(); ++i) {
      EXPECT_TRUE(dict->Less(domain.sorted_codes[i],
                             domain.sorted_codes[i + 1]))
          << "domain " << domain.attribute << " not value-sorted at " << i;
    }
  }

  const WcojResult wcoj = GenericJoinExecute(db, mask);
  EXPECT_TRUE(wcoj.result == db.JoinAll(mask));
  EXPECT_EQ(wcoj.result.size(), 3u);  // (1,1,9), (5,5,5), (9,9,1)
}

TEST(GenericJoinTest, MixedValueTypesJoinByValueOrder) {
  DatabaseScheme scheme = DatabaseScheme::Parse({"AB", "BC", "AC"});
  // Ints and strings share the attribute; ValueDictionary::Compare orders
  // ints before strings, and the remap must respect that total order.
  Relation r = Relation::FromRowsOrDie(
      {"A", "B"}, {{"x", 2}, {1, "y"}, {1, 2}});
  Relation s = Relation::FromRowsOrDie(
      {"B", "C"}, {{"y", "z"}, {2, 3}, {2, "z"}});
  Relation t = Relation::FromRowsOrDie(
      {"A", "C"}, {{1, "z"}, {"x", 3}, {1, 3}});
  const Database db = Database::CreateOrDie(scheme, {r, s, t});
  const RelMask mask = db.scheme().full_mask();
  const WcojResult wcoj = GenericJoinExecute(db, mask);
  EXPECT_TRUE(wcoj.result == db.JoinAll(mask));
}

TEST(GenericJoinTest, AttributeOrderPutsJoinAttributesFirst) {
  // B appears in all three schemes; A, C, D, E are private. Join
  // attributes lead (descending occurrence count), privates follow by name.
  DatabaseScheme scheme = DatabaseScheme::Parse({"ABC", "BD", "BE"});
  GeneratorOptions gen;
  Rng rng(3);
  const Database db = RandomDatabaseOverScheme(scheme, gen, rng);
  const TrieIndex index = BuildTrieIndex(db, db.scheme().full_mask());
  ASSERT_EQ(index.attribute_order.size(), 5u);
  EXPECT_EQ(index.attribute_order[0], "B");
  EXPECT_EQ(index.attribute_order[1], "A");
  EXPECT_EQ(index.attribute_order[2], "C");
  EXPECT_EQ(index.attribute_order[3], "D");
  EXPECT_EQ(index.attribute_order[4], "E");
}

TEST(GenericJoinTest, TrieRowsAreLexicographicallySorted) {
  GeneratorOptions gen;
  gen.shape = QueryShape::kCycle;
  gen.relation_count = 4;
  gen.rows_per_relation = 64;
  gen.join_domain = 8;
  Rng rng(17);
  const Database db = RandomDatabase(gen, rng);
  const TrieIndex index = BuildTrieIndex(db, db.scheme().full_mask());
  for (const TrieRelation& rel : index.relations) {
    const size_t d = rel.depth();
    for (size_t i = 0; i + 1 < rel.rows(); ++i) {
      const uint32_t* a = rel.ranks.data() + i * d;
      const uint32_t* b = rel.ranks.data() + (i + 1) * d;
      EXPECT_TRUE(std::lexicographical_compare(a, a + d, b, b + d))
          << "relation " << rel.relation_index << " rows " << i << "," << i + 1;
    }
  }
}

TEST(GenericJoinTest, CountersScaleWithWork) {
  GeneratorOptions gen;
  gen.shape = QueryShape::kCycle;
  gen.relation_count = 5;
  gen.rows_per_relation = 64;
  gen.join_domain = 8;
  Rng rng(5);
  const Database db = RandomDatabase(gen, rng);
  const WcojResult wcoj = GenericJoinExecute(db, db.scheme().full_mask());
  EXPECT_TRUE(wcoj.result == db.JoinAll(db.scheme().full_mask()));
  // Ten attribute levels (5 join + 5 private): any output row implies at
  // least nine partial bindings on the way down.
  if (!wcoj.result.empty()) {
    EXPECT_GE(wcoj.partial_tuples, 9u);
    EXPECT_GT(wcoj.seeks, 0u);
  }
}

}  // namespace
}  // namespace taujoin
