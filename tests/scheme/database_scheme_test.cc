#include "scheme/database_scheme.h"

#include <gtest/gtest.h>

namespace taujoin {
namespace {

// The paper's running examples from §2.
class PaperSchemesTest : public ::testing::Test {
 protected:
  // {ABC, BE, DF} — unconnected, components {ABC, BE} and {DF}.
  DatabaseScheme d1_ = DatabaseScheme::Parse({"ABC", "BE", "DF"});
  // {CG, GH}.
  DatabaseScheme d2_ = DatabaseScheme::Parse({"CG", "GH"});
  // {ABC, BE, AF, DF} — connected.
  DatabaseScheme d3_ = DatabaseScheme::Parse({"ABC", "BE", "AF", "DF"});
};

TEST_F(PaperSchemesTest, LinkedExamples) {
  // {ABC, BE, DF} is linked to {CG, GH} via attribute C; the paper checks
  // this with the combined scheme.
  DatabaseScheme combined =
      DatabaseScheme::Parse({"ABC", "BE", "DF", "CG", "GH"});
  RelMask left = 0b00111;   // ABC, BE, DF
  RelMask right = 0b11000;  // CG, GH
  EXPECT_TRUE(combined.Linked(left, right));

  // {AB, BE, DF} is not linked to {CG, GH}.
  DatabaseScheme combined2 =
      DatabaseScheme::Parse({"AB", "BE", "DF", "CG", "GH"});
  EXPECT_FALSE(combined2.Linked(0b00111, 0b11000));
}

TEST_F(PaperSchemesTest, ConnectedExamples) {
  EXPECT_FALSE(d1_.Connected(d1_.full_mask()));  // {ABC, BE, DF}
  EXPECT_TRUE(d3_.Connected(d3_.full_mask()));   // {ABC, BE, AF, DF}
}

TEST_F(PaperSchemesTest, ComponentsOfD1) {
  std::vector<RelMask> components = d1_.Components(d1_.full_mask());
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], RelMask{0b011});  // {ABC, BE}
  EXPECT_EQ(components[1], RelMask{0b100});  // {DF}
}

TEST_F(PaperSchemesTest, UnionOfLinkedSchemesCanStayUnconnected) {
  // {ABC, BE, DF, CG, GH} remains unconnected although {ABC,BE,DF} is
  // linked to {CG, GH}.
  DatabaseScheme combined =
      DatabaseScheme::Parse({"ABC", "BE", "DF", "CG", "GH"});
  EXPECT_FALSE(combined.Connected(combined.full_mask()));
  EXPECT_EQ(combined.ComponentCount(combined.full_mask()), 2);
}

TEST(DatabaseSchemeTest, SingletonsAreConnected) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "CD"});
  EXPECT_TRUE(d.Connected(0b01));
  EXPECT_TRUE(d.Connected(0b10));
  EXPECT_FALSE(d.Connected(0b11));
}

TEST(DatabaseSchemeTest, EmptyMaskIsConnected) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB"});
  EXPECT_TRUE(d.Connected(0));
}

TEST(DatabaseSchemeTest, AttributesOfUnion) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "DE"});
  EXPECT_EQ(d.AttributesOf(0b011), Schema::Parse("ABC"));
  EXPECT_EQ(d.AttributesOf(0b111), Schema::Parse("ABCDE"));
}

TEST(DatabaseSchemeTest, LinkedIsSymmetric) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "DE"});
  EXPECT_EQ(d.Linked(0b001, 0b010), d.Linked(0b010, 0b001));
  EXPECT_EQ(d.Linked(0b001, 0b100), d.Linked(0b100, 0b001));
  EXPECT_TRUE(d.Linked(0b001, 0b010));
  EXPECT_FALSE(d.Linked(0b001, 0b100));
}

TEST(DatabaseSchemeTest, ComponentsPartitionTheMask) {
  DatabaseScheme d =
      DatabaseScheme::Parse({"AB", "BC", "DE", "EF", "GH"});
  RelMask mask = d.full_mask();
  std::vector<RelMask> components = d.Components(mask);
  RelMask acc = 0;
  for (RelMask c : components) {
    EXPECT_TRUE(d.Connected(c));
    EXPECT_FALSE(d.Linked(c, mask & ~c));
    EXPECT_EQ(acc & c, RelMask{0});
    acc |= c;
  }
  EXPECT_EQ(acc, mask);
  EXPECT_EQ(components.size(), 3u);
}

TEST(DatabaseSchemeTest, ComponentContaining) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "DE"});
  EXPECT_EQ(d.ComponentContaining(d.full_mask(), 0), RelMask{0b011});
  EXPECT_EQ(d.ComponentContaining(d.full_mask(), 2), RelMask{0b100});
}

TEST(DatabaseSchemeTest, DuplicateSchemesAreAdjacent) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "AB"});
  EXPECT_TRUE(d.Adjacent(0, 1));
  EXPECT_TRUE(d.Connected(0b11));
}

TEST(DatabaseSchemeTest, AdjacencyExcludesSelf) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC"});
  EXPECT_EQ(d.AdjacencyRow(0), RelMask{0b10});
  EXPECT_EQ(d.AdjacencyRow(1), RelMask{0b01});
}

TEST(DatabaseSchemeTest, MaskToString) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC"});
  EXPECT_EQ(d.MaskToString(0b11), "{AB, BC}");
}

TEST(MaskTest, Helpers) {
  EXPECT_EQ(PopCount(0b1011), 3);
  EXPECT_EQ(LowestBit(0b1100), RelMask{0b100});
  EXPECT_EQ(LowestBitIndex(0b1100), 2);
  EXPECT_EQ(FullMask(3), RelMask{0b111});
  EXPECT_EQ(SingletonMask(4), RelMask{0b10000});
  EXPECT_EQ(MaskToIndices(0b1010), (std::vector<int>{1, 3}));
}

TEST(MaskTest, ForEachNonEmptySubmaskVisitsAll) {
  std::vector<RelMask> seen;
  ForEachNonEmptySubmask(0b101, [&](RelMask m) { seen.push_back(m); });
  EXPECT_EQ(seen, (std::vector<RelMask>{0b001, 0b100, 0b101}));
}

}  // namespace
}  // namespace taujoin
