#include "scheme/acyclicity.h"

#include <gtest/gtest.h>

#include "scheme/hypergraph.h"
#include "scheme/query_graph.h"

namespace taujoin {
namespace {

TEST(AcyclicityTest, ChainIsBergeAcyclic) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CD"});
  EXPECT_TRUE(IsBergeAcyclic(d));
  EXPECT_TRUE(IsGammaAcyclic(d));
  EXPECT_TRUE(IsBetaAcyclic(d));
  EXPECT_TRUE(IsAlphaAcyclic(d));
}

TEST(AcyclicityTest, TriangleFailsAll) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CA"});
  EXPECT_FALSE(IsBergeAcyclic(d));
  EXPECT_FALSE(IsGammaAcyclic(d));
  EXPECT_FALSE(IsBetaAcyclic(d));
  EXPECT_FALSE(IsAlphaAcyclic(d));
}

TEST(AcyclicityTest, CoveredTriangleIsAlphaButNotBeta) {
  // {AB, BC, CA, ABC}: α-acyclic, but the subset {AB, BC, CA} is cyclic,
  // so not β-acyclic (hence not γ-acyclic).
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CA", "ABC"});
  EXPECT_TRUE(IsAlphaAcyclic(d));
  EXPECT_FALSE(IsBetaAcyclic(d));
  EXPECT_FALSE(IsGammaAcyclic(d));
}

TEST(AcyclicityTest, TwoEdgesSharingTwoAttributesNotBerge) {
  // ABX and ABY share {A, B}: a Berge cycle but no γ-cycle (m >= 3).
  DatabaseScheme d = DatabaseScheme::Parse({"ABX", "ABY"});
  EXPECT_FALSE(IsBergeAcyclic(d));
  EXPECT_TRUE(IsGammaAcyclic(d));
  EXPECT_TRUE(IsBetaAcyclic(d));
  EXPECT_TRUE(IsAlphaAcyclic(d));
}

TEST(AcyclicityTest, GammaCycleWitnessIsWellFormed) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CA"});
  std::optional<GammaCycle> cycle = FindGammaCycle(d);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_GE(cycle->schemes.size(), 3u);
  EXPECT_EQ(cycle->schemes.size(), cycle->attributes.size());
  // Consecutive schemes share the connecting attribute.
  const size_t m = cycle->schemes.size();
  for (size_t i = 0; i < m; ++i) {
    const Schema& a = d.scheme(cycle->schemes[i]);
    const Schema& b = d.scheme(cycle->schemes[(i + 1) % m]);
    EXPECT_TRUE(a.Contains(cycle->attributes[i]));
    EXPECT_TRUE(b.Contains(cycle->attributes[i]));
  }
}

TEST(AcyclicityTest, ImplicationChainOnShapes) {
  // Berge ⇒ γ ⇒ β ⇒ α on a zoo of schemes.
  std::vector<std::vector<std::string>> cases = {
      {"AB", "BC", "CD"},
      {"AB", "BC", "CA"},
      {"AB", "BC", "CA", "ABC"},
      {"ABX", "ABY"},
      {"ABCD", "AX", "BY", "CZ"},
      {"AB", "BC", "CD", "DA"},
      {"ABC", "BCD", "CDE", "DEA"},
      {"AB", "CD"},
      {"A"},
      {"ABC", "CDE", "EFA"},
  };
  for (const auto& schemes : cases) {
    DatabaseScheme d = DatabaseScheme::Parse(schemes);
    if (IsBergeAcyclic(d)) {
      EXPECT_TRUE(IsGammaAcyclic(d)) << d.ToString();
    }
    if (IsGammaAcyclic(d)) {
      EXPECT_TRUE(IsBetaAcyclic(d)) << d.ToString();
    }
    if (IsBetaAcyclic(d)) {
      EXPECT_TRUE(IsAlphaAcyclic(d)) << d.ToString();
    }
  }
}

TEST(AcyclicityTest, ShapedSchemes) {
  EXPECT_TRUE(IsGammaAcyclic(MakeShapedScheme(QueryShape::kChain, 5)));
  EXPECT_TRUE(IsGammaAcyclic(MakeShapedScheme(QueryShape::kStar, 5)));
  EXPECT_FALSE(IsAlphaAcyclic(MakeShapedScheme(QueryShape::kCycle, 5)));
  EXPECT_FALSE(IsAlphaAcyclic(MakeShapedScheme(QueryShape::kClique, 4)));
}

TEST(QueryGraphTest, ShapesHaveExpectedEdgeCounts) {
  EXPECT_EQ(QueryGraph::Of(MakeShapedScheme(QueryShape::kChain, 5)).edges.size(),
            4u);
  EXPECT_EQ(QueryGraph::Of(MakeShapedScheme(QueryShape::kStar, 5)).edges.size(),
            4u);
  EXPECT_EQ(QueryGraph::Of(MakeShapedScheme(QueryShape::kCycle, 5)).edges.size(),
            5u);
  EXPECT_EQ(
      QueryGraph::Of(MakeShapedScheme(QueryShape::kClique, 5)).edges.size(),
      10u);
}

TEST(QueryGraphTest, ChainAndStarAreTrees) {
  EXPECT_TRUE(QueryGraph::Of(MakeShapedScheme(QueryShape::kChain, 6)).IsTree());
  EXPECT_TRUE(QueryGraph::Of(MakeShapedScheme(QueryShape::kStar, 6)).IsTree());
  EXPECT_FALSE(QueryGraph::Of(MakeShapedScheme(QueryShape::kCycle, 6)).IsTree());
}

TEST(QueryGraphTest, StarDegrees) {
  QueryGraph g = QueryGraph::Of(MakeShapedScheme(QueryShape::kStar, 5));
  std::vector<int> degrees = g.Degrees();
  EXPECT_EQ(degrees[0], 4);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(degrees[static_cast<size_t>(i)], 1);
}

TEST(QueryGraphTest, ShapedSchemesAreConnected) {
  for (QueryShape shape : {QueryShape::kChain, QueryShape::kStar,
                           QueryShape::kCycle, QueryShape::kClique}) {
    DatabaseScheme d = MakeShapedScheme(shape, 5);
    EXPECT_TRUE(d.Connected(d.full_mask())) << QueryShapeToString(shape);
  }
}

}  // namespace
}  // namespace taujoin
