#include "scheme/acyclicity.h"

#include <gtest/gtest.h>

#include "scheme/hypergraph.h"
#include "scheme/query_graph.h"

namespace taujoin {
namespace {

TEST(AcyclicityTest, ChainIsBergeAcyclic) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CD"});
  EXPECT_TRUE(IsBergeAcyclic(d));
  EXPECT_TRUE(IsGammaAcyclic(d));
  EXPECT_TRUE(IsBetaAcyclic(d));
  EXPECT_TRUE(IsAlphaAcyclic(d));
}

TEST(AcyclicityTest, TriangleFailsAll) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CA"});
  EXPECT_FALSE(IsBergeAcyclic(d));
  EXPECT_FALSE(IsGammaAcyclic(d));
  EXPECT_FALSE(IsBetaAcyclic(d));
  EXPECT_FALSE(IsAlphaAcyclic(d));
}

TEST(AcyclicityTest, CoveredTriangleIsAlphaButNotBeta) {
  // {AB, BC, CA, ABC}: α-acyclic, but the subset {AB, BC, CA} is cyclic,
  // so not β-acyclic (hence not γ-acyclic).
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CA", "ABC"});
  EXPECT_TRUE(IsAlphaAcyclic(d));
  EXPECT_FALSE(IsBetaAcyclic(d));
  EXPECT_FALSE(IsGammaAcyclic(d));
}

TEST(AcyclicityTest, TwoEdgesSharingTwoAttributesNotBerge) {
  // ABX and ABY share {A, B}: a Berge cycle but no γ-cycle (m >= 3).
  DatabaseScheme d = DatabaseScheme::Parse({"ABX", "ABY"});
  EXPECT_FALSE(IsBergeAcyclic(d));
  EXPECT_TRUE(IsGammaAcyclic(d));
  EXPECT_TRUE(IsBetaAcyclic(d));
  EXPECT_TRUE(IsAlphaAcyclic(d));
}

TEST(AcyclicityTest, GammaCycleWitnessIsWellFormed) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CA"});
  std::optional<GammaCycle> cycle = FindGammaCycle(d);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_GE(cycle->schemes.size(), 3u);
  EXPECT_EQ(cycle->schemes.size(), cycle->attributes.size());
  // Consecutive schemes share the connecting attribute.
  const size_t m = cycle->schemes.size();
  for (size_t i = 0; i < m; ++i) {
    const Schema& a = d.scheme(cycle->schemes[i]);
    const Schema& b = d.scheme(cycle->schemes[(i + 1) % m]);
    EXPECT_TRUE(a.Contains(cycle->attributes[i]));
    EXPECT_TRUE(b.Contains(cycle->attributes[i]));
  }
}

TEST(AcyclicityTest, ImplicationChainOnShapes) {
  // Berge ⇒ γ ⇒ β ⇒ α on a zoo of schemes.
  std::vector<std::vector<std::string>> cases = {
      {"AB", "BC", "CD"},
      {"AB", "BC", "CA"},
      {"AB", "BC", "CA", "ABC"},
      {"ABX", "ABY"},
      {"ABCD", "AX", "BY", "CZ"},
      {"AB", "BC", "CD", "DA"},
      {"ABC", "BCD", "CDE", "DEA"},
      {"AB", "CD"},
      {"A"},
      {"ABC", "CDE", "EFA"},
  };
  for (const auto& schemes : cases) {
    DatabaseScheme d = DatabaseScheme::Parse(schemes);
    if (IsBergeAcyclic(d)) {
      EXPECT_TRUE(IsGammaAcyclic(d)) << d.ToString();
    }
    if (IsGammaAcyclic(d)) {
      EXPECT_TRUE(IsBetaAcyclic(d)) << d.ToString();
    }
    if (IsBetaAcyclic(d)) {
      EXPECT_TRUE(IsAlphaAcyclic(d)) << d.ToString();
    }
  }
}

TEST(AcyclicityTest, ShapedSchemes) {
  EXPECT_TRUE(IsGammaAcyclic(MakeShapedScheme(QueryShape::kChain, 5)));
  EXPECT_TRUE(IsGammaAcyclic(MakeShapedScheme(QueryShape::kStar, 5)));
  EXPECT_FALSE(IsAlphaAcyclic(MakeShapedScheme(QueryShape::kCycle, 5)));
  EXPECT_FALSE(IsAlphaAcyclic(MakeShapedScheme(QueryShape::kClique, 4)));
}

TEST(QueryGraphTest, ShapesHaveExpectedEdgeCounts) {
  EXPECT_EQ(QueryGraph::Of(MakeShapedScheme(QueryShape::kChain, 5)).edges.size(),
            4u);
  EXPECT_EQ(QueryGraph::Of(MakeShapedScheme(QueryShape::kStar, 5)).edges.size(),
            4u);
  EXPECT_EQ(QueryGraph::Of(MakeShapedScheme(QueryShape::kCycle, 5)).edges.size(),
            5u);
  EXPECT_EQ(
      QueryGraph::Of(MakeShapedScheme(QueryShape::kClique, 5)).edges.size(),
      10u);
}

TEST(QueryGraphTest, ChainAndStarAreTrees) {
  EXPECT_TRUE(QueryGraph::Of(MakeShapedScheme(QueryShape::kChain, 6)).IsTree());
  EXPECT_TRUE(QueryGraph::Of(MakeShapedScheme(QueryShape::kStar, 6)).IsTree());
  EXPECT_FALSE(QueryGraph::Of(MakeShapedScheme(QueryShape::kCycle, 6)).IsTree());
}

TEST(QueryGraphTest, StarDegrees) {
  QueryGraph g = QueryGraph::Of(MakeShapedScheme(QueryShape::kStar, 5));
  std::vector<int> degrees = g.Degrees();
  EXPECT_EQ(degrees[0], 4);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(degrees[static_cast<size_t>(i)], 1);
}

TEST(QueryGraphTest, ShapedSchemesAreConnected) {
  for (QueryShape shape : {QueryShape::kChain, QueryShape::kStar,
                           QueryShape::kCycle, QueryShape::kClique,
                           QueryShape::kAcyclic}) {
    DatabaseScheme d = MakeShapedScheme(shape, 5);
    EXPECT_TRUE(d.Connected(d.full_mask())) << QueryShapeToString(shape);
  }
}

TEST(RandomAcyclicSchemeTest, AlwaysAlphaAcyclicConnectedAndTreeable) {
  // Reverse GYO ear additions must produce α-acyclic hypergraphs by
  // construction, for every size and seed: GYO reduces them to empty and
  // Maier's maximum-weight spanning tree yields a valid join tree.
  for (int n = 2; n <= 12; ++n) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      const DatabaseScheme d = MakeRandomAcyclicScheme(n, seed);
      SCOPED_TRACE(testing::Message() << "n=" << n << " seed=" << seed);
      ASSERT_EQ(d.size(), n);
      EXPECT_TRUE(d.Connected(d.full_mask()));
      EXPECT_TRUE(GyoReducesToEmpty(d));
      EXPECT_TRUE(IsAlphaAcyclic(d));
      const std::optional<JoinTree> tree = BuildJoinTree(d);
      ASSERT_TRUE(tree.has_value());
      EXPECT_TRUE(tree->IsValidFor(d));
    }
  }
}

TEST(RandomAcyclicSchemeTest, DeterministicPerSeed) {
  const DatabaseScheme a = MakeRandomAcyclicScheme(8, 99);
  const DatabaseScheme b = MakeRandomAcyclicScheme(8, 99);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.scheme(i), b.scheme(i)) << "relation " << i;
  }
}

TEST(AnalyzeAcyclicityTest, VerdictAndTreeMatchTheMask) {
  const DatabaseScheme chain = MakeShapedScheme(QueryShape::kChain, 6);
  const AcyclicAnalysis yes = AnalyzeAcyclicity(chain, chain.full_mask());
  ASSERT_TRUE(yes.acyclic);
  EXPECT_EQ(yes.mask, chain.full_mask());
  EXPECT_EQ(yes.members.size(), 6u);
  EXPECT_EQ(yes.tree.parent.size(), 6u);
  EXPECT_EQ(yes.MemberPreOrder().size(), 6u);

  const DatabaseScheme cycle = MakeShapedScheme(QueryShape::kCycle, 5);
  EXPECT_FALSE(AnalyzeAcyclicity(cycle, cycle.full_mask()).acyclic);
  // Dropping one relation of the cycle leaves a chain: the restricted
  // analysis must see the sub-scheme, not the full one.
  const RelMask sub = cycle.full_mask() & ~RelMask{1};
  const AcyclicAnalysis restricted = AnalyzeAcyclicity(cycle, sub);
  EXPECT_TRUE(restricted.acyclic);
  EXPECT_EQ(restricted.members.size(), 4u);
  // Members are actual relation indices of the *original* scheme.
  for (int member : restricted.members) EXPECT_NE(member, 0);
}

}  // namespace
}  // namespace taujoin
