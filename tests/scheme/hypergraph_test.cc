#include "scheme/hypergraph.h"

#include <gtest/gtest.h>

namespace taujoin {
namespace {

TEST(GyoTest, ChainIsAlphaAcyclic) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CD"});
  EXPECT_TRUE(GyoReducesToEmpty(d));
}

TEST(GyoTest, TriangleIsCyclic) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CA"});
  EXPECT_FALSE(GyoReducesToEmpty(d));
}

TEST(GyoTest, TriangleWithCoveringEdgeIsAcyclic) {
  // Adding ABC covers the triangle — the classic α-acyclicity quirk.
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CA", "ABC"});
  EXPECT_TRUE(GyoReducesToEmpty(d));
}

TEST(GyoTest, SingleSchemeIsAcyclic) {
  DatabaseScheme d = DatabaseScheme::Parse({"ABC"});
  EXPECT_TRUE(GyoReducesToEmpty(d));
}

TEST(GyoTest, StarIsAcyclic) {
  DatabaseScheme d = DatabaseScheme::Parse({"ABCD", "AX", "BY", "CZ"});
  EXPECT_TRUE(GyoReducesToEmpty(d));
}

TEST(GyoTest, CycleOfFourIsCyclic) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CD", "DA"});
  EXPECT_FALSE(GyoReducesToEmpty(d));
}

TEST(JoinTreeTest, ChainTreeIsValid) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CD"});
  std::optional<JoinTree> tree = BuildJoinTree(d);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(tree->IsValidFor(d));
}

TEST(JoinTreeTest, CyclicSchemeHasNoJoinTree) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CA"});
  EXPECT_FALSE(BuildJoinTree(d).has_value());
}

TEST(JoinTreeTest, BuildMatchesGyoOnManySchemes) {
  std::vector<std::vector<std::string>> cases = {
      {"AB", "BC", "CD"},
      {"AB", "BC", "CA"},
      {"ABC", "BCD", "CDE"},
      {"AB", "CD"},            // unconnected but acyclic
      {"AB", "BC", "CD", "DA"},
      {"ABCD", "AX", "BY", "CZ"},
      {"AB", "BC", "CA", "ABC"},
      {"ABE", "BCE", "CDE"},
  };
  for (const auto& schemes : cases) {
    DatabaseScheme d = DatabaseScheme::Parse(schemes);
    EXPECT_EQ(BuildJoinTree(d).has_value(), GyoReducesToEmpty(d))
        << d.ToString();
  }
}

TEST(JoinTreeTest, PreOrderStartsAtRootAndCoversAll) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CD", "DE"});
  std::optional<JoinTree> tree = BuildJoinTree(d);
  ASSERT_TRUE(tree.has_value());
  std::vector<int> order = tree->PreOrder();
  EXPECT_EQ(order.size(), 4u);
  // Every node except the first in order must appear after its parent.
  std::vector<int> position(4, -1);
  for (size_t i = 0; i < order.size(); ++i) {
    position[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  for (int i = 0; i < 4; ++i) {
    int p = tree->parent[static_cast<size_t>(i)];
    if (p >= 0) {
      EXPECT_LT(position[static_cast<size_t>(p)],
                position[static_cast<size_t>(i)]);
    }
  }
}

TEST(JoinTreeTest, InvalidTreeDetected) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "BC", "CD"});
  // A star rooted at CD separates AB from BC — breaks the B-subtree.
  JoinTree bad;
  bad.parent = {2, 2, -1};
  bad.root = 2;
  EXPECT_FALSE(bad.IsValidFor(d));
}

TEST(JoinTreeTest, UnconnectedAcyclicSchemeGetsForestGluedTree) {
  DatabaseScheme d = DatabaseScheme::Parse({"AB", "CD"});
  std::optional<JoinTree> tree = BuildJoinTree(d);
  // Prim glues the components with a weight-0 edge; the result still
  // satisfies the per-attribute subtree property.
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(tree->IsValidFor(d));
}

}  // namespace
}  // namespace taujoin
