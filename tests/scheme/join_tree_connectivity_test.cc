#include "scheme/join_tree_connectivity.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cost.h"
#include "enumerate/subsets.h"
#include "workload/star_schema.h"

namespace taujoin {
namespace {

TEST(JoinTreeConnectivityTest, ChainSubtreesAreIntervals) {
  DatabaseScheme scheme = DatabaseScheme::Parse({"AB", "BC", "CD", "DE"});
  std::optional<JoinTree> tree = BuildJoinTree(scheme);
  ASSERT_TRUE(tree.has_value());
  JoinTreeConnectivity jt(&scheme, &*tree);
  // On a chain, join-tree-connected subsets are exactly the contiguous
  // intervals.
  EXPECT_TRUE(jt.Connected(0b0011));
  EXPECT_TRUE(jt.Connected(0b0110));
  EXPECT_TRUE(jt.Connected(0b1111));
  EXPECT_FALSE(jt.Connected(0b0101));
  EXPECT_FALSE(jt.Connected(0b1001));
  EXPECT_TRUE(jt.Connected(0b0001));  // singleton
  EXPECT_TRUE(jt.Connected(0));       // empty
}

TEST(JoinTreeConnectivityTest, LinkedNeedsATreeEdgeAcross) {
  DatabaseScheme scheme = DatabaseScheme::Parse({"AB", "BC", "CD", "DE"});
  std::optional<JoinTree> tree = BuildJoinTree(scheme);
  ASSERT_TRUE(tree.has_value());
  JoinTreeConnectivity jt(&scheme, &*tree);
  EXPECT_TRUE(jt.Linked(0b0001, 0b0010));   // adjacent on the chain
  EXPECT_FALSE(jt.Linked(0b0001, 0b0100));  // two apart
  EXPECT_TRUE(jt.Linked(0b0011, 0b0100));   // interval touching next
  EXPECT_FALSE(jt.Linked(0b0001, 0b1000));
}

TEST(JoinTreeConnectivityTest, MatchesGraphConnectivityOnChains) {
  // For pure chains the intersection graph *is* the (unique) join tree, so
  // the two notions coincide on every subset.
  DatabaseScheme scheme = DatabaseScheme::Parse({"AB", "BC", "CD", "DE", "EF"});
  std::optional<JoinTree> tree = BuildJoinTree(scheme);
  ASSERT_TRUE(tree.has_value());
  JoinTreeConnectivity jt(&scheme, &*tree);
  ForEachNonEmptySubmask(scheme.full_mask(), [&](RelMask mask) {
    EXPECT_EQ(jt.Connected(mask), scheme.Connected(mask)) << mask;
  });
}

TEST(JoinTreeConnectivityTest, SectionFiveC4VariantOnConsistentData) {
  // §5: an α-acyclic, pairwise-consistent database satisfies C4 under the
  // join-tree connectivity. Verify on fully reduced chain databases.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed * 17 + 3);
    Database db = ConsistentTreeDatabase(4, 8, 4, rng);
    JoinCache cache(&db);
    if (cache.Tau(db.scheme().full_mask()) == 0) continue;
    std::optional<JoinTree> tree = BuildJoinTree(db.scheme());
    ASSERT_TRUE(tree.has_value());
    JoinTreeConnectivity jt(&db.scheme(), &*tree);
    const RelMask full = db.scheme().full_mask();
    ForEachNonEmptySubmask(full, [&](RelMask e1) {
      if (!jt.Connected(e1)) return;
      ForEachNonEmptySubmask(full & ~e1, [&](RelMask e2) {
        if (!jt.Connected(e2) || !jt.Linked(e1, e2)) return;
        uint64_t joined = cache.Tau(e1 | e2);
        EXPECT_GE(joined, cache.Tau(e1)) << "seed " << seed;
        EXPECT_GE(joined, cache.Tau(e2)) << "seed " << seed;
      });
    });
  }
}

TEST(JoinTreeConnectivityTest, RejectsInvalidTree) {
  DatabaseScheme scheme = DatabaseScheme::Parse({"AB", "BC", "CD"});
  JoinTree bad;
  bad.parent = {2, 2, -1};  // breaks the B-subtree property
  bad.root = 2;
  EXPECT_DEATH(JoinTreeConnectivity(&scheme, &bad), "");
}

}  // namespace
}  // namespace taujoin
