// EXPLAIN-style walkthrough: build a small database fluently, let the
// condition-aware optimizer justify its search space from the declared
// FDs, execute the chosen strategy step by step, and compare with a
// semijoin pre-pass — the paper's ideas as a debugging session.
//
// Run:  build/examples/explain

#include <cstdio>

#include "common/metrics.h"
#include "core/builder.h"
#include "core/conditions.h"
#include "core/cost.h"
#include "core/trace.h"
#include "optimize/condition_aware.h"
#include "report/table.h"
#include "semijoin/program.h"

using namespace taujoin;  // NOLINT

int main() {
  // A tiny course catalog, declared fluently; join attributes key the
  // "dimension" side (C keys courses, I keys instructors).
  Database db = DatabaseBuilder()
                    .Relation("Enroll", "S,C")
                    .Row({"Mokhtar", "Phy101"})
                    .Row({"Mokhtar", "Math200"})
                    .Row({"Lin", "Math200"})
                    .Row({"Katina", "Lit104"})
                    .Row({"Sundram", "Phy101"})
                    .Relation("Course", "C,I")
                    .Row({"Phy101", "Newton"})
                    .Row({"Math200", "Lorentz"})
                    .Row({"Lit104", "Turing"})
                    .Relation("Instr", "I,D")
                    .Row({"Newton", "Phy"})
                    .Row({"Lorentz", "Math"})
                    .Row({"Turing", "CS"})
                    .Build();
  FdSet fds;
  fds.Add(FunctionalDependency{Schema{"C"}, Schema{"I"}});
  fds.Add(FunctionalDependency{Schema{"I"}, Schema{"D"}});

  PrintSection("Optimizer decision");
  JoinCache cache(&db);
  ExactSizeModel model(&cache);
  ConditionAwarePlan chosen = OptimizeConditionAware(
      db.scheme(), db.scheme().full_mask(), fds, model);
  std::printf("declared FDs:   %s\n", fds.ToString().c_str());
  std::printf("justification:  %s\n",
              SpaceJustificationToString(chosen.justification));
  std::printf("chosen plan:    %s  (tau = %llu)\n",
              chosen.plan.strategy.ToString(db).c_str(),
              static_cast<unsigned long long>(chosen.plan.cost));
  std::printf("conditions on the data: %s\n",
              CheckAllConditions(cache).ToString().c_str());

  PrintSection("EXPLAIN ANALYZE");
  EvaluationTrace trace = ExecuteStrategy(db, chosen.plan.strategy);
  std::printf("%s", trace.ToString(db).c_str());

  // The trace above shows the plan's own joins; the registry shows what
  // the machinery did to find the plan — memo hit rate, kernel timings,
  // pool activity. Together they are the full EXPLAIN ANALYZE story.
  PrintSection("Observability registry (process-wide)");
  MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
  std::printf("%s", metrics.ToString().c_str());
  uint64_t memo_hits = 0, memo_misses = 0;
  for (const auto& [name, value] : metrics.counters) {
    if (name == "cost_engine.memo_hits") memo_hits = value;
    if (name == "cost_engine.memo_misses") memo_misses = value;
  }
  if (memo_hits + memo_misses > 0) {
    std::printf("memo hit rate: %.1f%%\n",
                100.0 * static_cast<double>(memo_hits) /
                    static_cast<double>(memo_hits + memo_misses));
  }

  PrintSection("Semijoin pre-pass (Bernstein-Chiu full reducer)");
  StatusOr<SemijoinProgram> program =
      SemijoinProgram::FullReducerFor(db.scheme());
  if (program.ok()) {
    std::printf("%s", program->ToString(db).c_str());
    SemijoinProgram::RunResult run = program->Run(db);
    ReportTable t({"relation", "before", "after reduction"});
    for (int i = 0; i < db.size(); ++i) {
      t.Row()
          .Cell(db.name(i))
          .Cell(db.state(i).Tau())
          .Cell(run.database.state(i).Tau());
    }
    t.Print();
    JoinCache reduced_cache(&run.database);
    ExactSizeModel reduced_model(&reduced_cache);
    ConditionAwarePlan after = OptimizeConditionAware(
        run.database.scheme(), run.database.scheme().full_mask(), fds,
        reduced_model);
    std::printf(
        "\ntau on raw data:      %llu\n"
        "tau after reduction:  %llu (plus the reduction's own work)\n",
        static_cast<unsigned long long>(chosen.plan.cost),
        static_cast<unsigned long long>(after.plan.cost));
  }

  std::printf(
      "\nEverything above is the paper in miniature: declared constraints\n"
      "license a restricted search (Theorems 2-3), the trace shows the\n"
      "τ measure the theorems optimize, and the semijoin pass is §5's\n"
      "bridge to monotone strategies.\n");
  return 0;
}
