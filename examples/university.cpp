// University registrar scenario — the paper's §4 examples as a user-facing
// walkthrough. Three ad-hoc queries over a registrar database show how the
// conditions C1'/C1/C2/C3 decide which optimizer shortcuts are safe.
//
// Run:  build/examples/university

#include <cstdio>

#include "core/conditions.h"
#include "core/cost.h"
#include "core/properties.h"
#include "core/strategy_parser.h"
#include "optimize/exhaustive.h"
#include "report/table.h"
#include "workload/paper_data.h"

using namespace taujoin;  // NOLINT

namespace {

void ShowDatabase(const Database& db) {
  for (int i = 0; i < db.size(); ++i) {
    std::printf("-- %s over %s (%llu tuples)\n%s\n", db.name(i).c_str(),
                db.scheme().scheme(i).ToString().c_str(),
                static_cast<unsigned long long>(db.state(i).Tau()),
                db.state(i).ToString().c_str());
  }
}

void ShowAllStrategies(const Database& db, JoinCache& cache) {
  ReportTable t({"strategy", "tau", "linear", "uses products"});
  ForEachStrategy(db.scheme(), db.scheme().full_mask(), StrategySpace::kAll,
                  [&](const Strategy& s) {
                    t.Row()
                        .Cell(s.ToString(db))
                        .Cell(TauCost(s, cache))
                        .Cell(IsLinear(s) ? "yes" : "no")
                        .Cell(UsesCartesianProducts(s, db.scheme()) ? "yes"
                                                                    : "no");
                    return true;
                  });
  t.Print();
}

void ShowConditions(JoinCache& cache) {
  std::printf("conditions: %s\n", CheckAllConditions(cache).ToString().c_str());
}

}  // namespace

int main() {
  PrintSection("Query 1: do athletes avoid courses with laboratory work?");
  {
    Database db = Example3Database();
    JoinCache cache(&db);
    ShowDatabase(db);
    ShowAllStrategies(db, cache);
    ShowConditions(cache);
    std::printf(
        "\nEvery order ties here — even the Cartesian-product plan\n"
        "(GS x CL) join SC. C1 holds but not strictly (C1'), so Theorem 1\n"
        "cannot promise that optimal linear plans avoid products, and\n"
        "indeed one optimal linear plan uses one.\n");
  }

  PrintSection("Query 2: the same question, a semester later");
  {
    Database db = Example4Database();
    JoinCache cache(&db);
    ShowAllStrategies(db, cache);
    ShowConditions(cache);
    auto optimum =
        OptimizeExhaustive(cache, db.scheme().full_mask(), StrategySpace::kAll);
    std::printf(
        "\nNow the data is skewed: the Cartesian product GS x CL (6 tuples)\n"
        "beats both real joins (9 and 7). The optimum %s costs %llu.\n"
        "C1 fails, so a never-products optimizer would pick a worse plan —\n"
        "exactly Example 4's point.\n",
        optimum->strategy.ToString(db).c_str(),
        static_cast<unsigned long long>(optimum->cost));
  }

  PrintSection("Query 3: how does each department serve the majors?");
  {
    Database db = Example5Database();
    JoinCache cache(&db);
    ShowDatabase(db);
    ShowConditions(cache);
    auto optimum =
        OptimizeExhaustive(cache, db.scheme().full_mask(), StrategySpace::kAll);
    auto system_r = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                       StrategySpace::kLinearNoCartesian);
    std::printf(
        "global optimum:         %s  (tau = %llu)\n"
        "best linear, no-CP:     %s  (tau = %llu)\n\n"
        "C1 and C2 hold but C3 fails (instructors teach many courses), so\n"
        "Theorem 3's guarantee is gone: the unique optimum is bushy and a\n"
        "System R-style search misses it — Example 5's point.\n",
        optimum->strategy.ToString(db).c_str(),
        static_cast<unsigned long long>(optimum->cost),
        system_r->strategy.ToString(db).c_str(),
        static_cast<unsigned long long>(system_r->cost));
  }
  return 0;
}
