// Quickstart: build a small database, enumerate join strategies, compare
// the τ cost of heuristic search spaces with the true optimum, and check
// the paper's conditions.
//
// Run:  build/examples/quickstart

#include <cstdio>

#include "core/conditions.h"
#include "core/cost.h"
#include "core/properties.h"
#include "core/strategy_parser.h"
#include "enumerate/strategy_enumerator.h"
#include "optimize/exhaustive.h"
#include "report/table.h"
#include "workload/paper_data.h"

using namespace taujoin;  // NOLINT — example brevity

int main() {
  // Example 1 from the paper: four relations {AB, BC, DE, FG}.
  Database db = Example1Database();
  JoinCache cache(&db);

  PrintSection("Database (Example 1 of the paper)");
  for (int i = 0; i < db.size(); ++i) {
    std::printf("%s over %s: %llu tuples\n", db.name(i).c_str(),
                db.scheme().scheme(i).ToString().c_str(),
                static_cast<unsigned long long>(db.state(i).Tau()));
  }

  PrintSection("Every strategy, by subspace");
  ReportTable table({"subspace", "strategies", "cheapest tau", "best strategy"});
  for (StrategySpace space :
       {StrategySpace::kAll, StrategySpace::kLinear,
        StrategySpace::kAvoidsCartesian, StrategySpace::kLinearNoCartesian}) {
    auto best = OptimizeExhaustive(cache, db.scheme().full_mask(), space);
    uint64_t count =
        CountStrategies(db.scheme(), db.scheme().full_mask(), space);
    table.Row()
        .Cell(StrategySpaceToString(space))
        .Cell(count)
        .Cell(best ? best->cost : 0)
        .Cell(best ? best->strategy.ToString(db) : "(none)");
  }
  table.Print();

  PrintSection("A specific strategy");
  Strategy s4 = ParseStrategyOrDie(db, "((R1 R3) (R2 R4))");
  std::printf("S4 = %s\n", s4.ToString(db).c_str());
  std::printf("tau(S4) = %llu, uses Cartesian products: %s\n",
              static_cast<unsigned long long>(TauCost(s4, cache)),
              UsesCartesianProducts(s4, db.scheme()) ? "yes" : "no");

  PrintSection("The paper's conditions on this database");
  ConditionsSummary summary = CheckAllConditions(cache);
  std::printf("%s\n", summary.ToString().c_str());
  std::printf(
      "\nC1 holds yet the optimum uses a Cartesian product — Example 1 shows\n"
      "C1 alone cannot justify the avoid-products heuristic (Theorem 2 also\n"
      "needs C2).\n");
  return 0;
}
