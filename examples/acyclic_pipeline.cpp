// Acyclic-query pipeline — the §5 discussion end to end: classify a
// scheme's degree of acyclicity, build a join tree, run the
// Bernstein–Chiu full reducer, evaluate with Yannakakis' algorithm, and
// observe C4 / monotone-increasing behaviour on the reduced database.
//
// Run:  build/examples/acyclic_pipeline

#include <cstdio>

#include "common/rng.h"
#include "core/conditions.h"
#include "core/cost.h"
#include "core/properties.h"
#include "report/table.h"
#include "scheme/acyclicity.h"
#include "scheme/hypergraph.h"
#include "semijoin/consistency.h"
#include "semijoin/full_reducer.h"
#include "semijoin/yannakakis.h"
#include "workload/generator.h"

using namespace taujoin;  // NOLINT

int main() {
  Rng rng(7);
  GeneratorOptions options;
  options.shape = QueryShape::kChain;
  options.relation_count = 5;
  options.rows_per_relation = 10;
  options.join_domain = 5;
  Database db = RandomDatabase(options, rng);

  PrintSection("Scheme classification");
  {
    ReportTable t({"property", "value"});
    t.Row().Cell("scheme").Cell(db.scheme().ToString());
    t.Row().Cell("Berge-acyclic").Cell(IsBergeAcyclic(db.scheme()) ? "yes" : "no");
    t.Row().Cell("gamma-acyclic").Cell(IsGammaAcyclic(db.scheme()) ? "yes" : "no");
    t.Row().Cell("beta-acyclic").Cell(IsBetaAcyclic(db.scheme()) ? "yes" : "no");
    t.Row().Cell("alpha-acyclic (GYO)").Cell(
        IsAlphaAcyclic(db.scheme()) ? "yes" : "no");
    t.Print();
  }

  PrintSection("Join tree");
  {
    std::optional<JoinTree> tree = BuildJoinTree(db.scheme());
    if (!tree) {
      std::printf("no join tree (scheme is cyclic)\n");
      return 1;
    }
    for (int i = 0; i < db.size(); ++i) {
      int p = tree->parent[static_cast<size_t>(i)];
      std::printf("  %s -> parent %s\n",
                  db.scheme().scheme(i).ToString().c_str(),
                  p < 0 ? "(root)" : db.scheme().scheme(p).ToString().c_str());
    }
  }

  PrintSection("Semijoin reduction (Bernstein-Chiu full reducer)");
  {
    StatusOr<Database> reduced_or = FullReduce(db);
    Database reduced = std::move(reduced_or).value();
    ReportTable t({"relation", "before", "after", "consistent now"});
    for (int i = 0; i < db.size(); ++i) {
      t.Row()
          .Cell(db.scheme().scheme(i).ToString())
          .Cell(db.state(i).Tau())
          .Cell(reduced.state(i).Tau())
          .Cell("yes");
    }
    t.Print();
    std::printf("pairwise consistent: %s\n",
                IsPairwiseConsistent(reduced) ? "yes" : "no");

    PrintSection("C4 and monotone-increasing evaluation on the reduced database");
    JoinCache cache(&reduced);
    std::printf("conditions on reduced database: %s\n",
                CheckAllConditions(cache).ToString().c_str());
    StatusOr<YannakakisResult> result = YannakakisEvaluate(reduced);
    std::printf("\nYannakakis evaluation order: %s\n",
                result->strategy.ToString(reduced).c_str());
    std::printf("intermediate sizes:");
    for (uint64_t s : result->step_sizes) {
      std::printf(" %llu", static_cast<unsigned long long>(s));
    }
    std::printf("  (never shrinks: the strategy is monotone increasing)\n");
    std::printf("final result: %llu tuples; equals naive join: %s\n",
                static_cast<unsigned long long>(result->result.Tau()),
                result->result == db.Evaluate() ? "yes" : "no");
    std::printf("monotone increasing per the step test: %s\n",
                IsMonotoneIncreasing(result->strategy, cache) ? "yes" : "no");
  }
  return 0;
}
