// Set-intersection ordering — §5's closing application. To minimize the
// elements generated while intersecting n sets, a left-deep (linear) order
// suffices: with ⋈ := ∩ over identical schemes, C3 holds automatically and
// Theorem 3 applies. This example intersects keyword posting lists.
//
// Run:  build/examples/set_intersection

#include <cstdio>

#include "common/rng.h"
#include "core/conditions.h"
#include "core/cost.h"
#include "core/properties.h"
#include "optimize/exhaustive.h"
#include "report/table.h"

using namespace taujoin;  // NOLINT

int main() {
  // Posting lists: documents containing each keyword.
  Rng rng(41);
  const int kDocs = 60;
  struct Keyword {
    const char* word;
    double density;
  };
  Keyword keywords[] = {{"database", 0.7}, {"join", 0.5},   {"optimal", 0.4},
                        {"strategy", 0.6}, {"linear", 0.3}};
  std::vector<Schema> schemes;
  std::vector<Relation> lists;
  std::vector<std::string> names;
  for (const Keyword& k : keywords) {
    Relation r{Schema{"Doc"}};
    for (int d = 0; d < kDocs; ++d) {
      if (rng.Bernoulli(k.density)) r.Insert(Tuple{d});
    }
    r.Insert(Tuple{kDocs});  // one document matches everything
    schemes.push_back(Schema{"Doc"});
    lists.push_back(std::move(r));
    names.push_back(k.word);
  }
  Database db = Database::CreateOrDie(DatabaseScheme(schemes), lists, names);
  JoinCache cache(&db);

  PrintSection("Posting lists");
  {
    ReportTable t({"keyword", "documents"});
    for (int i = 0; i < db.size(); ++i) {
      t.Row().Cell(db.name(i)).Cell(db.state(i).Tau());
    }
    t.Print();
  }

  PrintSection("The paper's conditions with ⋈ = ∩");
  std::printf("%s\n", CheckAllConditions(cache).ToString().c_str());
  std::printf(
      "Identical schemes make every pair linked and every intersection no\n"
      "larger than its inputs, so C3 holds by construction (Section 5).\n");

  PrintSection("Best orders");
  {
    auto all = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                  StrategySpace::kAll);
    auto linear = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                     StrategySpace::kLinear);
    ReportTable t({"space", "order", "elements generated"});
    t.Row().Cell("all trees").Cell(all->strategy.ToString(db)).Cell(all->cost);
    t.Row()
        .Cell("linear only")
        .Cell(linear->strategy.ToString(db))
        .Cell(linear->cost);
    t.Print();
    std::printf(
        "\nTheorem 3 in action: the linear row matches the global optimum —\n"
        "an intersection engine never needs bushy plans under this measure.\n"
        "(The winning order starts from the rarest keyword, the classic\n"
        "smallest-first rule.)\n");
    std::printf("optimum monotone decreasing: %s\n",
                IsMonotoneDecreasing(linear->strategy, cache) ? "yes" : "no");
  }
  return 0;
}
