// Data-warehouse scenario — §4 in practice. A star-schema database whose
// dimension keys make every join lossless (C2 by the chase), and a fully
// keyed pipeline where all joins are on superkeys (C3). The example shows
// which optimizer restrictions each constraint licenses, and how far the
// classic independence estimator drifts from exact τ.
//
// Run:  build/examples/warehouse

#include <cstdio>

#include "common/rng.h"
#include "core/conditions.h"
#include "core/cost.h"
#include "core/properties.h"
#include "fd/chase.h"
#include "optimize/dp.h"
#include "optimize/greedy.h"
#include "report/table.h"
#include "workload/keyed_generator.h"
#include "workload/star_schema.h"

using namespace taujoin;  // NOLINT

int main() {
  Rng rng(2026);

  PrintSection("Star schema: fact + 3 dimensions with declared keys");
  {
    StarSchemaOptions options;
    options.dimension_count = 3;
    options.fact_rows = 24;
    options.dimension_rows = 8;
    options.dimension_domain = 12;  // a third of the FKs dangle
    StarSchemaDatabase star = MakeStarSchema(options, rng);
    Database& db = star.database;
    std::printf("schemes: %s\nFDs: %s\n", db.scheme().ToString().c_str(),
                star.fds.ToString().c_str());
    std::printf("chase says no lossy joins: %s\n",
                HasNoLossyJoins(db.scheme(), star.fds) ? "yes" : "no");

    JoinCache cache(&db);
    ConditionsSummary conditions = CheckAllConditions(cache);
    std::printf("conditions: %s\n\n", conditions.ToString().c_str());

    ExactSizeModel exact(&cache);
    auto optimum = OptimizeDp(db.scheme(), db.scheme().full_mask(), exact,
                              {SearchSpace::kBushy, true});
    auto no_cp = OptimizeDp(db.scheme(), db.scheme().full_mask(), exact,
                            {SearchSpace::kBushy, false});
    ReportTable t({"search space", "plan", "tau"});
    t.Row().Cell("all strategies").Cell(optimum->strategy.ToString(db)).Cell(
        optimum->cost);
    t.Row().Cell("no Cartesian products").Cell(no_cp->strategy.ToString(db))
        .Cell(no_cp->cost);
    t.Print();
    std::printf(
        "\nLossless FK joins give C2; with C1 they guarantee (Theorem 2)\n"
        "that skipping Cartesian products loses nothing: both rows match.\n");
  }

  PrintSection("Fully keyed pipeline: every join on a superkey of both sides");
  {
    KeyedGeneratorOptions options;
    options.shape = QueryShape::kChain;
    options.relation_count = 6;
    options.rows_per_relation = 10;
    options.join_domain = 14;
    Database db = KeyedDatabase(options, rng);
    JoinCache cache(&db);
    ConditionsSummary conditions = CheckAllConditions(cache);
    std::printf("conditions: %s\n\n", conditions.ToString().c_str());

    ExactSizeModel exact(&cache);
    auto bushy = OptimizeDp(db.scheme(), db.scheme().full_mask(), exact,
                            {SearchSpace::kBushy, true});
    auto linear_nocp = OptimizeDp(db.scheme(), db.scheme().full_mask(), exact,
                                  {SearchSpace::kLinear, false});
    PlanResult greedy =
        OptimizeGreedyLinear(db.scheme(), db.scheme().full_mask(), exact);
    ReportTable t({"optimizer", "plan", "tau", "linear"});
    t.Row()
        .Cell("exhaustive DP (bushy, CP allowed)")
        .Cell(bushy->strategy.ToString(db))
        .Cell(bushy->cost)
        .Cell(IsLinear(bushy->strategy) ? "yes" : "no");
    t.Row()
        .Cell("DP restricted: linear, no CP")
        .Cell(linear_nocp->strategy.ToString(db))
        .Cell(linear_nocp->cost)
        .Cell("yes");
    t.Row()
        .Cell("greedy linear (polynomial)")
        .Cell(greedy.strategy.ToString(db))
        .Cell(greedy.cost)
        .Cell("yes");
    t.Print();
    std::printf(
        "\nC3 holds (all joins on superkeys), so by Theorem 3 the cheap\n"
        "restricted search is *provably* optimal — the first two rows must\n"
        "agree. The greedy row shows how close the polynomial heuristic\n"
        "gets without the guarantee.\n");
  }

  PrintSection("Estimator drift: exact tau vs independence assumption");
  {
    KeyedGeneratorOptions options;
    options.shape = QueryShape::kStar;
    options.relation_count = 5;
    options.rows_per_relation = 12;
    options.join_domain = 18;
    Database db = KeyedDatabase(options, rng);
    JoinCache cache(&db);
    ExactSizeModel exact(&cache);
    IndependenceSizeModel independence(&db);
    auto exact_plan = OptimizeDp(db.scheme(), db.scheme().full_mask(), exact,
                                 {SearchSpace::kBushy, true});
    auto estimated_plan =
        OptimizeDp(db.scheme(), db.scheme().full_mask(), independence,
                   {SearchSpace::kBushy, true});
    uint64_t estimated_true_cost = TauCost(estimated_plan->strategy, cache);
    ReportTable t({"optimizer", "plan", "true tau"});
    t.Row()
        .Cell("exact sizes (the paper's measure)")
        .Cell(exact_plan->strategy.ToString(db))
        .Cell(exact_plan->cost);
    t.Row()
        .Cell("independence estimates (System R)")
        .Cell(estimated_plan->strategy.ToString(db))
        .Cell(estimated_true_cost);
    t.Print();
    std::printf(
        "\nThe paper's critique of uniformity+independence assumptions:\n"
        "an estimator-driven optimizer can pick a different plan; its true\n"
        "tau is shown above for comparison.\n");
  }
  return 0;
}
