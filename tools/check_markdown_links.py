#!/usr/bin/env python3
"""Checks that relative links in markdown files resolve.

For every inline link/image `[text](target)` in the given files:

  * external schemes (http/https/mailto) are skipped — CI must not flake
    on the network;
  * a relative target must exist on disk, resolved against the file's
    directory;
  * a `#fragment` on a markdown target (or a bare `#fragment`) must match
    a heading in the target file, using GitHub's slugification.

Exits nonzero listing every broken link. Usage:

  tools/check_markdown_links.py README.md DESIGN.md docs/*.md
"""

import re
import sys
from pathlib import Path

# Inline links/images. Deliberately simple: no nested parens in targets
# (none of our docs use them), angle-bracket targets unwrapped below.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\s+\"[^\"]*\")?)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str, seen: dict) -> str:
    """GitHub-style anchor for a heading text."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\s-]", "", slug, flags=re.UNICODE)
    slug = re.sub(r"\s", "-", slug)
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def anchors_of(path: Path, cache: dict) -> set:
    if path in cache:
        return cache[path]
    anchors, seen = set(), {}
    in_fence = False
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        cache[path] = anchors
        return anchors
    for line in text.splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            anchors.add(github_slug(m.group(2), seen))
    cache[path] = anchors
    return anchors


def check_file(path: Path, anchor_cache: dict) -> list:
    errors = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as e:
        return [f"{path}: unreadable: {e}"]

    # Strip fenced code blocks: links inside them are examples, not links.
    lines, in_fence = [], False
    for line in text.splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        lines.append("" if in_fence else line)

    for lineno, line in enumerate(lines, start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1).split(' "')[0].strip("<>")
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                continue
            where = f"{path}:{lineno}"
            if target.startswith("#"):
                if target[1:] not in anchors_of(path, anchor_cache):
                    errors.append(f"{where}: no heading for anchor "
                                  f"'{target}'")
                continue
            file_part, _, fragment = target.partition("#")
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{where}: broken link '{target}' "
                              f"({resolved} does not exist)")
                continue
            if fragment and resolved.suffix.lower() in (".md", ".markdown"):
                if fragment not in anchors_of(resolved, anchor_cache):
                    errors.append(f"{where}: '{target}' — no heading for "
                                  f"anchor '#{fragment}' in {file_part}")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    anchor_cache = {}
    all_errors = []
    for name in argv[1:]:
        path = Path(name)
        errors = check_file(path, anchor_cache)
        if errors:
            all_errors.extend(errors)
        else:
            print(f"{path}: OK")
    for err in all_errors:
        print(f"ERROR: {err}", file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
