#!/usr/bin/env python3
"""Validates the taujoin_metrics snapshot embedded in a BENCH_*.json artifact.

The bench runner splices a process-wide metrics snapshot into the
google-benchmark JSON after the run finishes (see bench/bench_main.h).
CI runs this script against both artifacts so a refactor that silently
drops the instrumentation — or breaks the splice and corrupts the JSON —
fails the perf-smoke job instead of shipping blind benchmarks.

Usage: check_bench_metrics.py BENCH_foo.json [BENCH_bar.json ...]
"""

import json
import sys

# Every bench run must carry at least one of these signal groups: the
# optimizer benches drive the CostEngine memo, the join benches drive the
# relational kernels directly. An artifact with neither means the
# instrumentation got compiled out or disconnected.
SIGNAL_GROUPS = {
    "cost_engine": ["cost_engine.memo_hits", "cost_engine.memo_misses"],
    "kernel": [
        "kernel.natural_join.calls",
        "kernel.count_natural_join.calls",
        "kernel.semijoin.calls",
        "kernel.project.calls",
    ],
}

TIMER_FIELDS = ["count", "total_ns", "min_ns", "max_ns", "p50_ns", "p99_ns"]

# BENCH_serve.json (schema taujoin-serve-bench/v1) report fields.
SERVE_SUMMARY_FIELDS = ["count", "p50_ns", "p95_ns", "max_ns", "mean_ns"]
SERVE_SUMMARIES = ["optimize", "optimize_cold", "optimize_warm", "execute",
                   "total", "plan", "data", "reduce"]
SERVE_REPORT_INTS = ["queries", "classes", "cache_hits", "cache_misses",
                     "cache_evictions", "acyclic_queries", "wcoj_queries"]
SERVE_SIZE_MODELS = ("exact", "independence", "sketch", "simpli2")

# BENCH_estimate.json (schema taujoin-estimate-bench/v1) layout.
ESTIMATE_FAMILIES = ("chain", "star", "cycle", "clique")
ESTIMATE_REGRET_FIELDS = ["regret_p50_x1000", "regret_p90_x1000",
                          "regret_max_x1000"]

# BENCH_kernels.json (schema taujoin-kernel-bench/v1) layout.
KERNEL_FAMILIES = ("uniform", "skewed", "clique")
KERNEL_KERNELS = ("join", "count")
KERNEL_RUN_INTS = ["threads", "effective_threads", "partition_fanout",
                   "best_ns", "tuples_per_sec", "output_rows",
                   "speedup_x1000"]
# The morsel-driven kernels' acceptance bar: ≥3x on the clique join at 8
# threads vs 1 — only enforceable where 8 hardware threads exist.
KERNEL_SPEEDUP_THREADS = 8
KERNEL_SPEEDUP_MIN_X1000 = 3000

# BENCH_acyclic.json (schema taujoin-acyclic-bench/v1) layout.
ACYCLIC_FAMILIES = ("chain", "star", "acyclic")
ACYCLIC_RUN_INTS = ["n", "rows", "domain", "binary_plan_ns",
                    "binary_exec_ns", "binary_total_ns",
                    "binary_intermediate_rows", "acyclic_detect_ns",
                    "acyclic_reduce_ns", "acyclic_join_ns",
                    "acyclic_total_ns", "acyclic_intermediate_rows",
                    "rows_dropped", "output_rows", "speedup_x1000"]
# The serving-tier acceptance bar: on chains and stars at n >= 8 the
# Yannakakis pipeline (detect + reduce + join) must beat the exact tier
# ladder's best binary plan end to end (plan + execute). Unlike the kernel
# speedup bar, this holds on any machine — the win comes from skipping
# plan search and from semijoin reduction, not from core count.
ACYCLIC_BAR_FAMILIES = ("chain", "star")
ACYCLIC_BAR_MIN_N = 8

# BENCH_serve_net.json (schema taujoin-serve-net-bench/v1) layout.
SERVE_NET_CONTEXT_INTS = ["queries", "seed", "shards", "queue_depth",
                          "classes"]
SERVE_NET_LATENCY_FIELDS = ["count", "p50_ns", "p95_ns", "p99_ns", "max_ns",
                            "mean_ns"]
SERVE_NET_MIN_LOAD_POINTS = 4

# BENCH_wcoj.json (schema taujoin-wcoj-bench/v1) layout.
WCOJ_FAMILIES = ("cycle", "clique")
WCOJ_RUN_INTS = ["n", "rows", "domain", "binary_plan_ns", "binary_exec_ns",
                 "binary_total_ns", "binary_intermediate_rows",
                 "wcoj_build_ns", "wcoj_search_ns", "wcoj_total_ns",
                 "wcoj_partial_tuples", "wcoj_seeks", "output_rows",
                 "speedup_x1000", "intermediate_ratio_x1000"]
# The WCOJ-tier acceptance bar: on cycles at n >= 6, Generic Join's
# partial tuples (successful non-final-level bindings) must sit strictly
# below the best binary strategy's summed intermediate rows — the AGM gap
# the tier exists to exploit. Machine-independent: both sides count
# tuples, not nanoseconds.
WCOJ_BAR_FAMILY = "cycle"
WCOJ_BAR_MIN_N = 6


def check_serve_schema(path: str, doc: dict) -> list[str]:
    """Validates the hand-rolled taujoin-serve-bench/v1 artifact layout."""
    errors = []
    context = doc.get("context")
    if not isinstance(context, dict):
        return [f"{path}: serve artifact missing 'context' object"]
    if context.get("taujoin_build_type") not in ("release", "debug"):
        errors.append(f"{path}: context.taujoin_build_type missing/invalid")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + [f"{path}: serve artifact has no runs"]
    saw_warm_hits = False
    for i, run in enumerate(runs):
        where = f"{path}: runs[{i}]"
        if not isinstance(run, dict):
            errors.append(f"{where} is not an object")
            continue
        if not isinstance(run.get("threads"), int) or run["threads"] < 1:
            errors.append(f"{where}.threads missing or < 1")
        if run.get("cache") not in ("on", "off"):
            errors.append(f"{where}.cache must be 'on' or 'off'")
        report = run.get("report")
        if not isinstance(report, dict):
            errors.append(f"{where}.report missing")
            continue
        for field in SERVE_REPORT_INTS:
            if not isinstance(report.get(field), int):
                errors.append(f"{where}.report.{field} missing integer")
        for summary_name in SERVE_SUMMARIES:
            summary = report.get(summary_name)
            if not isinstance(summary, dict):
                errors.append(f"{where}.report.{summary_name} missing")
                continue
            for field in SERVE_SUMMARY_FIELDS:
                if not isinstance(summary.get(field), int):
                    errors.append(f"{where}.report.{summary_name}.{field} "
                                  "missing integer")
        if not isinstance(report.get("tiers"), dict):
            errors.append(f"{where}.report.tiers missing")
        if report.get("size_model") not in SERVE_SIZE_MODELS:
            errors.append(f"{where}.report.size_model missing or not one of "
                          f"{SERVE_SIZE_MODELS}")
        if run.get("cache") == "on" and report.get("cache_hits", 0) > 0:
            saw_warm_hits = True
    if not saw_warm_hits:
        errors.append(f"{path}: no cached run recorded any cache hits — the "
                      "plan cache is disconnected")
    counters = doc.get("taujoin_metrics", {}).get("counters", {})
    if isinstance(counters, dict):
        traffic = counters.get("serve.plan_cache.hits", 0) + \
            counters.get("serve.plan_cache.misses", 0)
        if traffic == 0:
            errors.append(f"{path}: no serve.plan_cache.* counter traffic in "
                          "taujoin_metrics")
    return errors


def check_estimate_schema(path: str, doc: dict) -> list[str]:
    """Validates the taujoin-estimate-bench/v1 regret artifact layout.

    Regret = τ(plan picked by the model) / τ(exact-optimal plan), reported
    ×1000 as integers. It is ≥ 1 by construction (every model optimizes
    the same space, scored with exact τ), and the exact model's regret is
    exactly 1 — both invariants are enforced here so a broken estimator
    wiring (or a scoring bug) fails CI instead of shipping flattering
    numbers.
    """
    errors = []
    context = doc.get("context")
    if not isinstance(context, dict):
        return [f"{path}: estimate artifact missing 'context' object"]
    if context.get("taujoin_build_type") not in ("release", "debug"):
        errors.append(f"{path}: context.taujoin_build_type missing/invalid")
    families = doc.get("families")
    if not isinstance(families, list) or not families:
        return errors + [f"{path}: estimate artifact has no families"]
    seen_families = []
    for i, family in enumerate(families):
        where = f"{path}: families[{i}]"
        if not isinstance(family, dict):
            errors.append(f"{where} is not an object")
            continue
        name = family.get("family")
        seen_families.append(name)
        if name not in ESTIMATE_FAMILIES:
            errors.append(f"{where}.family {name!r} not one of "
                          f"{ESTIMATE_FAMILIES}")
        if not isinstance(family.get("trials"), int) or family["trials"] < 1:
            errors.append(f"{where}.trials missing or < 1")
        models = family.get("models")
        if not isinstance(models, list):
            errors.append(f"{where}.models missing")
            continue
        seen_models = []
        for model in models:
            if not isinstance(model, dict):
                errors.append(f"{where} has a non-object model entry")
                continue
            model_name = model.get("model")
            seen_models.append(model_name)
            mwhere = f"{where}.models[{model_name}]"
            regrets = {}
            for field in ESTIMATE_REGRET_FIELDS:
                value = model.get(field)
                if not isinstance(value, int):
                    errors.append(f"{mwhere}.{field} missing integer")
                    continue
                regrets[field] = value
                if value < 1000:
                    errors.append(f"{mwhere}.{field} = {value} < 1000 — "
                                  "regret below 1 is impossible")
            if len(regrets) == len(ESTIMATE_REGRET_FIELDS):
                p50, p90, mx = (regrets[f] for f in ESTIMATE_REGRET_FIELDS)
                if not p50 <= p90 <= mx:
                    errors.append(f"{mwhere}: regret p50 <= p90 <= max "
                                  f"violated ({p50}, {p90}, {mx})")
                if model_name == "exact" and (p50, p90, mx) != (1000,) * 3:
                    errors.append(f"{mwhere}: exact model regret must be "
                                  "exactly 1000 everywhere")
            if not isinstance(model.get("plans_differ"), int) or \
                    model["plans_differ"] < 0:
                errors.append(f"{mwhere}.plans_differ missing non-negative "
                              "integer")
        missing = [m for m in SERVE_SIZE_MODELS if m not in seen_models]
        if missing:
            errors.append(f"{where}: missing models {missing}")
    missing = [f for f in ESTIMATE_FAMILIES if f not in seen_families]
    if missing:
        errors.append(f"{path}: missing families {missing}")
    return errors


def check_kernel_schema(path: str, doc: dict) -> list[str]:
    """Validates the taujoin-kernel-bench/v1 morsel-kernel artifact.

    Layout checks run everywhere. The ≥3x clique-join speedup criterion
    is enforced only when the recording machine reported ≥ 8 hardware
    threads — a 1-core container can produce bit-identical output but
    not parallel speedup, and a silently-skipped gate is recorded in the
    artifact's own context for provenance.
    """
    errors = []
    context = doc.get("context")
    if not isinstance(context, dict):
        return [f"{path}: kernel artifact missing 'context' object"]
    if context.get("taujoin_build_type") not in ("release", "debug"):
        errors.append(f"{path}: context.taujoin_build_type missing/invalid")
    for field in ("rows_per_side", "reps", "seed", "hardware_concurrency",
                  "morsel_rows"):
        if not isinstance(context.get(field), int):
            errors.append(f"{path}: context.{field} missing integer")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + [f"{path}: kernel artifact has no runs"]

    baselines = set()  # (family, kernel) with a threads=1 run
    seen_families = set()
    clique_join_speedup = None
    for i, run in enumerate(runs):
        where = f"{path}: runs[{i}]"
        if not isinstance(run, dict):
            errors.append(f"{where} is not an object")
            continue
        family = run.get("family")
        if family not in KERNEL_FAMILIES:
            errors.append(f"{where}.family {family!r} not one of "
                          f"{KERNEL_FAMILIES}")
        seen_families.add(family)
        kernel = run.get("kernel")
        if kernel not in KERNEL_KERNELS:
            errors.append(f"{where}.kernel {kernel!r} not one of "
                          f"{KERNEL_KERNELS}")
        bad_int = False
        for field in KERNEL_RUN_INTS:
            if not isinstance(run.get(field), int) or run[field] < 0:
                errors.append(f"{where}.{field} missing non-negative integer")
                bad_int = True
        if bad_int:
            continue
        if run["threads"] < 1 or run["partition_fanout"] < 1:
            errors.append(f"{where}: threads and partition_fanout must be "
                          "positive")
        if run["effective_threads"] < 1:
            errors.append(f"{where}: effective_threads must be positive")
        hw = context.get("hardware_concurrency")
        if isinstance(hw, int) and run["threads"] > hw:
            # Oversubscription is allowed (the sweep deliberately includes
            # it) but its speedups measure the scheduler, not the kernels —
            # surface it rather than fail.
            print(f"WARNING: {where}: threads={run['threads']} exceeds "
                  f"hardware_concurrency={hw} — speedup for this run is "
                  "not a parallelism measurement", file=sys.stderr)
        if run["threads"] == 1:
            baselines.add((family, kernel))
            if run["speedup_x1000"] != 1000:
                errors.append(f"{where}: 1-thread speedup must be exactly "
                              f"1000, got {run['speedup_x1000']}")
        if (family, kernel, run["threads"]) == \
                ("clique", "join", KERNEL_SPEEDUP_THREADS):
            clique_join_speedup = run["speedup_x1000"]

    missing = [f for f in KERNEL_FAMILIES if f not in seen_families]
    if missing:
        errors.append(f"{path}: missing kernel families {missing}")
    for family in KERNEL_FAMILIES:
        for kernel in KERNEL_KERNELS:
            if family in seen_families and (family, kernel) not in baselines:
                errors.append(f"{path}: family {family!r} kernel {kernel!r} "
                              "has no 1-thread baseline run")

    hw = context.get("hardware_concurrency")
    if isinstance(hw, int) and hw >= KERNEL_SPEEDUP_THREADS:
        if clique_join_speedup is None:
            errors.append(f"{path}: no clique join run at "
                          f"{KERNEL_SPEEDUP_THREADS} threads")
        elif clique_join_speedup < KERNEL_SPEEDUP_MIN_X1000:
            errors.append(
                f"{path}: clique join speedup at {KERNEL_SPEEDUP_THREADS} "
                f"threads is {clique_join_speedup}/1000, below the "
                f"{KERNEL_SPEEDUP_MIN_X1000}/1000 acceptance bar")

    counters = doc.get("taujoin_metrics", {}).get("counters", {})
    if isinstance(counters, dict):
        for name in ("kernel.morsels_executed", "kernel.partitions_built",
                     "kernel.probe_rows"):
            if counters.get(name, 0) <= 0:
                errors.append(f"{path}: counter '{name}' recorded no traffic "
                              "— the morsel kernels are disconnected")
    return errors


def check_acyclic_schema(path: str, doc: dict) -> list[str]:
    """Validates the taujoin-acyclic-bench/v1 serving-tier artifact.

    Beyond layout, enforces the tier's acceptance bar: for every chain and
    star run at n >= ACYCLIC_BAR_MIN_N, the Yannakakis path's end-to-end
    latency must be strictly below the exact binary ladder's, and the two
    paths must agree on output cardinality (the differential test pins
    full set equality; here a cardinality mismatch means the artifact
    benchmarked two different queries).
    """
    errors = []
    context = doc.get("context")
    if not isinstance(context, dict):
        return [f"{path}: acyclic artifact missing 'context' object"]
    if context.get("taujoin_build_type") not in ("release", "debug"):
        errors.append(f"{path}: context.taujoin_build_type missing/invalid")
    for field in ("rows", "seed", "threads", "morsel_rows",
                  "hardware_concurrency"):
        if not isinstance(context.get(field), int):
            errors.append(f"{path}: context.{field} missing integer")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + [f"{path}: acyclic artifact has no runs"]

    seen = {family: [] for family in ACYCLIC_FAMILIES}
    for i, run in enumerate(runs):
        where = f"{path}: runs[{i}]"
        if not isinstance(run, dict):
            errors.append(f"{where} is not an object")
            continue
        family = run.get("family")
        if family not in ACYCLIC_FAMILIES:
            errors.append(f"{where}.family {family!r} not one of "
                          f"{ACYCLIC_FAMILIES}")
        if not isinstance(run.get("binary_tier"), str):
            errors.append(f"{where}.binary_tier missing string")
        elif run["binary_tier"] == "acyclic":
            errors.append(f"{where}: the binary path rode the acyclic tier "
                          "— the comparison is against itself")
        bad_int = False
        for field in ACYCLIC_RUN_INTS:
            if not isinstance(run.get(field), int) or run[field] < 0:
                errors.append(f"{where}.{field} missing non-negative integer")
                bad_int = True
        if bad_int:
            continue
        if family in seen:
            seen[family].append(run["n"])
        if run["binary_total_ns"] != \
                run["binary_plan_ns"] + run["binary_exec_ns"]:
            errors.append(f"{where}: binary_total_ns != plan + exec")
        acyclic_sum = run["acyclic_detect_ns"] + run["acyclic_reduce_ns"] + \
            run["acyclic_join_ns"]
        if run["acyclic_total_ns"] != acyclic_sum:
            errors.append(f"{where}: acyclic_total_ns != detect + reduce "
                          "+ join")
        if family in ACYCLIC_BAR_FAMILIES and \
                run["n"] >= ACYCLIC_BAR_MIN_N and \
                run["acyclic_total_ns"] >= run["binary_total_ns"]:
            errors.append(
                f"{where}: {family} n={run['n']}: acyclic path "
                f"{run['acyclic_total_ns']}ns did not beat the binary "
                f"ladder's {run['binary_total_ns']}ns — the serving-tier "
                "acceptance bar")

    for family, ns in seen.items():
        if not ns:
            errors.append(f"{path}: missing acyclic-bench family {family!r}")
        elif family in ACYCLIC_BAR_FAMILIES and \
                max(ns) < ACYCLIC_BAR_MIN_N:
            errors.append(f"{path}: family {family!r} has no run at "
                          f"n >= {ACYCLIC_BAR_MIN_N} — the acceptance bar "
                          "was never exercised")

    counters = doc.get("taujoin_metrics", {}).get("counters", {})
    if isinstance(counters, dict):
        for name in ("serve.acyclic.reducer_passes",
                     "serve.acyclic.semijoins"):
            if counters.get(name, 0) <= 0:
                errors.append(f"{path}: counter '{name}' recorded no "
                              "traffic — the full reducer is disconnected")
    return errors


def check_wcoj_schema(path: str, doc: dict) -> list[str]:
    """Validates the taujoin-wcoj-bench/v1 worst-case-optimal artifact.

    Beyond layout, enforces the tier's acceptance bar: every cycle run at
    n >= WCOJ_BAR_MIN_N must show Generic Join's partial tuples strictly
    below the binary ladder's summed intermediate rows. The bench binary
    itself aborts on an output-cardinality mismatch between the two
    paths, so a well-formed artifact already implies agreement.
    """
    errors = []
    context = doc.get("context")
    if not isinstance(context, dict):
        return [f"{path}: wcoj artifact missing 'context' object"]
    if context.get("taujoin_build_type") not in ("release", "debug"):
        errors.append(f"{path}: context.taujoin_build_type missing/invalid")
    for field in ("rows", "seed", "threads", "morsel_rows",
                  "hardware_concurrency"):
        if not isinstance(context.get(field), int):
            errors.append(f"{path}: context.{field} missing integer")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + [f"{path}: wcoj artifact has no runs"]

    seen = {family: [] for family in WCOJ_FAMILIES}
    for i, run in enumerate(runs):
        where = f"{path}: runs[{i}]"
        if not isinstance(run, dict):
            errors.append(f"{where} is not an object")
            continue
        family = run.get("family")
        if family not in WCOJ_FAMILIES:
            errors.append(f"{where}.family {family!r} not one of "
                          f"{WCOJ_FAMILIES}")
        if not isinstance(run.get("binary_tier"), str):
            errors.append(f"{where}.binary_tier missing string")
        elif run["binary_tier"] in ("wcoj", "acyclic"):
            errors.append(f"{where}: the binary path rode the "
                          f"{run['binary_tier']} tier — the comparison is "
                          "against itself")
        bad_int = False
        for field in WCOJ_RUN_INTS:
            if not isinstance(run.get(field), int) or run[field] < 0:
                errors.append(f"{where}.{field} missing non-negative integer")
                bad_int = True
        if bad_int:
            continue
        if family in seen:
            seen[family].append(run["n"])
        if run["binary_total_ns"] != \
                run["binary_plan_ns"] + run["binary_exec_ns"]:
            errors.append(f"{where}: binary_total_ns != plan + exec")
        if run["wcoj_total_ns"] != \
                run["wcoj_build_ns"] + run["wcoj_search_ns"]:
            errors.append(f"{where}: wcoj_total_ns != build + search")
        if family == WCOJ_BAR_FAMILY and run["n"] >= WCOJ_BAR_MIN_N and \
                run["wcoj_partial_tuples"] >= run["binary_intermediate_rows"]:
            errors.append(
                f"{where}: cycle n={run['n']}: wcoj partial tuples "
                f"{run['wcoj_partial_tuples']} did not stay strictly below "
                f"the binary ladder's {run['binary_intermediate_rows']} "
                "intermediate rows — the WCOJ-tier acceptance bar")

    for family, ns in seen.items():
        if not ns:
            errors.append(f"{path}: missing wcoj-bench family {family!r}")
        elif family == WCOJ_BAR_FAMILY and max(ns) < WCOJ_BAR_MIN_N:
            errors.append(f"{path}: family {family!r} has no run at "
                          f"n >= {WCOJ_BAR_MIN_N} — the acceptance bar "
                          "was never exercised")

    counters = doc.get("taujoin_metrics", {}).get("counters", {})
    if isinstance(counters, dict):
        for name in ("wcoj.executions", "wcoj.trie_builds",
                     "wcoj.partial_tuples"):
            if counters.get(name, 0) <= 0:
                errors.append(f"{path}: counter '{name}' recorded no "
                              "traffic — the wcoj executor is disconnected")
    return errors


def check_serve_net_schema(path: str, doc: dict) -> list[str]:
    """Validates the taujoin-serve-net-bench/v1 network-serving artifact.

    Beyond layout, enforces the serving acceptance criteria from
    docs/SERVING.md: a saturation curve of at least four load points with
    rising offered concurrency and zero client-visible errors, and a
    graceful drain that completed every admitted query (dropped == 0).
    The embedded /metrics scrape must already have passed the bench's own
    Prometheus grammar check (well_formed == true).
    """
    errors = []
    context = doc.get("context")
    if not isinstance(context, dict):
        return [f"{path}: serve-net artifact missing 'context' object"]
    if context.get("taujoin_build_type") not in ("release", "debug"):
        errors.append(f"{path}: context.taujoin_build_type missing/invalid")
    for field in SERVE_NET_CONTEXT_INTS:
        if not isinstance(context.get(field), int):
            errors.append(f"{path}: context.{field} missing integer")
    if context.get("cold_model") not in SERVE_SIZE_MODELS:
        errors.append(f"{path}: context.cold_model missing or not one of "
                      f"{SERVE_SIZE_MODELS}")

    points = doc.get("load_points")
    if not isinstance(points, list) or \
            len(points) < SERVE_NET_MIN_LOAD_POINTS:
        return errors + [f"{path}: saturation curve needs >= "
                         f"{SERVE_NET_MIN_LOAD_POINTS} load_points"]
    last_concurrency = 0
    for i, point in enumerate(points):
        where = f"{path}: load_points[{i}]"
        if not isinstance(point, dict):
            errors.append(f"{where} is not an object")
            continue
        for field in ("connections", "window", "queries"):
            if not isinstance(point.get(field), int) or point[field] < 1:
                errors.append(f"{where}.{field} missing positive integer")
        if point.get("errors") != 0:
            errors.append(f"{where}.errors must be 0, got "
                          f"{point.get('errors')!r}")
        if not isinstance(point.get("qps"), (int, float)) or \
                point["qps"] <= 0:
            errors.append(f"{where}.qps missing positive number")
        latency = point.get("latency")
        if not isinstance(latency, dict):
            errors.append(f"{where}.latency missing")
            continue
        for field in SERVE_NET_LATENCY_FIELDS:
            if not isinstance(latency.get(field), int):
                errors.append(f"{where}.latency.{field} missing integer")
        if all(isinstance(latency.get(f), int)
               for f in SERVE_NET_LATENCY_FIELDS):
            p50, p95, p99, mx = (latency[f] for f in
                                 ("p50_ns", "p95_ns", "p99_ns", "max_ns"))
            if not p50 <= p95 <= p99 <= mx:
                errors.append(f"{where}.latency: p50 <= p95 <= p99 <= max "
                              f"violated ({p50}, {p95}, {p99}, {mx})")
        if isinstance(point.get("connections"), int) and \
                isinstance(point.get("window"), int):
            concurrency = point["connections"] * point["window"]
            if concurrency <= last_concurrency:
                errors.append(f"{where}: offered concurrency "
                              f"{concurrency} does not rise along the "
                              "curve")
            last_concurrency = concurrency

    drain = doc.get("drain")
    if not isinstance(drain, dict):
        errors.append(f"{path}: missing 'drain' object")
    else:
        if drain.get("drain_ok") is not True:
            errors.append(f"{path}: drain.drain_ok is not true")
        if drain.get("dropped") != 0:
            errors.append(f"{path}: drain.dropped must be 0 — queries were "
                          "lost on shutdown")
        admitted, completed = drain.get("admitted"), drain.get("completed")
        if not isinstance(admitted, int) or not isinstance(completed, int):
            errors.append(f"{path}: drain.admitted/completed missing "
                          "integers")
        elif admitted != completed:
            errors.append(f"{path}: drain admitted {admitted} != completed "
                          f"{completed}")

    scrape = doc.get("metrics_scrape")
    if not isinstance(scrape, dict):
        errors.append(f"{path}: missing 'metrics_scrape' object")
    else:
        if scrape.get("well_formed") is not True:
            errors.append(f"{path}: metrics_scrape.well_formed is not true")
        if not isinstance(scrape.get("lines"), int) or scrape["lines"] < 1:
            errors.append(f"{path}: metrics_scrape.lines missing positive "
                          "integer")

    if not isinstance(doc.get("server_stats"), dict):
        errors.append(f"{path}: missing 'server_stats' object (the stats-op "
                      "scrape)")

    counters = doc.get("taujoin_metrics", {}).get("counters", {})
    if isinstance(counters, dict):
        for name in ("serve.server.requests", "serve.server.queries_admitted",
                     "serve.server.queries_completed"):
            if counters.get(name, 0) <= 0:
                errors.append(f"{path}: counter '{name}' recorded no "
                              "traffic — the server path is disconnected")
        if counters.get("serve.plan_cache.hits", 0) + \
                counters.get("serve.plan_cache.misses", 0) == 0:
            errors.append(f"{path}: no serve.plan_cache.* counter traffic "
                          "in taujoin_metrics")
    return errors


def check(path: str) -> list[str]:
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: cannot parse as JSON: {e}"]

    metrics = doc.get("taujoin_metrics")
    if metrics is None:
        return [f"{path}: missing top-level 'taujoin_metrics' key"]
    if not isinstance(metrics, dict):
        return [f"{path}: 'taujoin_metrics' is not an object"]

    for section in ("counters", "gauges", "timers"):
        if not isinstance(metrics.get(section), dict):
            errors.append(f"{path}: taujoin_metrics.{section} missing or not "
                          "an object")
    if errors:
        return errors

    counters = metrics["counters"]
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            errors.append(f"{path}: counter '{name}' is not a non-negative "
                          f"integer: {value!r}")
    for name, value in metrics["gauges"].items():
        if not isinstance(value, int):
            errors.append(f"{path}: gauge '{name}' is not an integer")

    for name, timer in metrics["timers"].items():
        if not isinstance(timer, dict):
            errors.append(f"{path}: timer '{name}' is not an object")
            continue
        for field in TIMER_FIELDS:
            if not isinstance(timer.get(field), int):
                errors.append(f"{path}: timer '{name}' missing integer "
                              f"field '{field}'")
        if all(isinstance(timer.get(f), int) for f in TIMER_FIELDS):
            if timer["count"] > 0 and timer["min_ns"] > timer["max_ns"]:
                errors.append(f"{path}: timer '{name}' has min > max")
            if timer["max_ns"] > timer["total_ns"]:
                errors.append(f"{path}: timer '{name}' has max > total")

    # The snapshot must carry real signal, not an empty shell. The
    # network-serving bench's default configuration (sketch cold model, no
    # execution) plans from statistics alone, so its signal is the serving
    # counters rather than memo or kernel traffic.
    if not errors:
        groups = dict(SIGNAL_GROUPS)
        if doc.get("schema") == "taujoin-serve-net-bench/v1":
            groups["serve"] = ["serve.server.requests",
                               "serve.plan_cache.hits",
                               "serve.plan_cache.misses"]
        live = [group for group, names in groups.items()
                if sum(counters.get(n, 0) for n in names) > 0]
        if not live:
            errors.append(
                f"{path}: no signal — neither memo traffic nor kernel calls "
                "recorded; instrumentation is disconnected")

    # Artifacts with a declared schema carry their own layout on top.
    if doc.get("schema") == "taujoin-serve-bench/v1":
        errors.extend(check_serve_schema(path, doc))
    elif doc.get("schema") == "taujoin-estimate-bench/v1":
        errors.extend(check_estimate_schema(path, doc))
    elif doc.get("schema") == "taujoin-kernel-bench/v1":
        errors.extend(check_kernel_schema(path, doc))
    elif doc.get("schema") == "taujoin-acyclic-bench/v1":
        errors.extend(check_acyclic_schema(path, doc))
    elif doc.get("schema") == "taujoin-wcoj-bench/v1":
        errors.extend(check_wcoj_schema(path, doc))
    elif doc.get("schema") == "taujoin-serve-net-bench/v1":
        errors.extend(check_serve_net_schema(path, doc))
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        errors = check(path)
        if errors:
            all_errors.extend(errors)
        else:
            with open(path, "r", encoding="utf-8") as f:
                metrics = json.load(f)["taujoin_metrics"]
            counters = metrics["counters"]
            hits = counters.get("cost_engine.memo_hits", 0)
            misses = counters.get("cost_engine.memo_misses", 0)
            memo = (f"memo hit rate {hits / (hits + misses):.1%}"
                    if hits + misses else "no memo traffic")
            joins = counters.get("kernel.natural_join.calls", 0) + \
                counters.get("kernel.count_natural_join.calls", 0)
            print(f"{path}: OK — {len(counters)} counters, "
                  f"{len(metrics['timers'])} timers, {memo}, "
                  f"{joins} join-kernel calls")
    for err in all_errors:
        print(f"ERROR: {err}", file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
