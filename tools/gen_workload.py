#!/usr/bin/env python3
"""Emits a query-workload stream for bench/taujoin_serve / WorkloadDriver.

One query per line in the format `shape,n,rows,domain,skew,seed`
(see serve/workload_driver.h QueryClassSpec::Parse); lines starting with
`#` are comments. The stream mixes chain/star/cycle/clique classes and
repeats them with Zipf-skewed frequencies — the access pattern under
which a plan cache pays off: a few hot query classes dominate, a long
tail of cold ones keeps missing.

The generator is deterministic in --seed (Python's random.Random), so a
workload file can be reproduced from its header comment.

Usage:
  tools/gen_workload.py --queries 1000 --zipf 1.1 --seed 42 > stream.txt
  build/bench/taujoin_serve --workload=stream.txt
"""

import argparse
import random
import sys

# shape -> ((min_n, max_n), alpha_acyclic). Acyclicity is structural per
# shape: chains and stars are trivially alpha-acyclic, `acyclic` is a
# random alpha-acyclic hypergraph grown by reverse GYO ear additions
# (scheme/query_graph.cc MakeRandomAcyclicScheme — every edge attaches by
# sharing a subset of one existing edge plus a fresh attribute, so GYO
# always reduces it to empty), while cycles (n >= 4) and cliques (n >= 3)
# are cyclic. The serving tier routes acyclic classes through the
# Yannakakis pipeline; the header stamps each class family's verdict so a
# workload file documents which of its classes qualify.
SHAPES = {
    "chain": ((4, 9), True),
    "star": ((4, 8), True),
    "cycle": ((4, 7), False),
    "clique": ((4, 6), False),
    "acyclic": ((4, 10), True),
}


def class_pool(args, rng):
    """One class per (shape, n) point, with per-class data seeds."""
    pool = []
    for shape, ((lo, hi), _) in SHAPES.items():
        if args.shapes and shape not in args.shapes:
            continue
        for n in range(lo, min(hi, args.max_relations) + 1):
            seed = rng.randrange(1, 2**31)
            pool.append((shape, n, args.rows, args.domain, args.skew, seed))
    if not pool:
        sys.exit("gen_workload.py: no classes selected")
    # Popularity rank must not correlate with query size, or the "hot"
    # classes would all be the cheap ones and the cache win would be
    # understated. Shuffle before assigning Zipf ranks.
    rng.shuffle(pool)
    return pool


def zipf_cdf(n, s):
    weights = [1.0 / (rank + 1) ** s for rank in range(n)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    return cdf


def sample(cdf, rng):
    u = rng.random()
    for i, bound in enumerate(cdf):
        if u < bound:
            return i
    return len(cdf) - 1


def main():
    parser = argparse.ArgumentParser(
        description="Generate a Zipf-skewed join-query workload stream.")
    parser.add_argument("--queries", type=int, default=1000,
                        help="stream length (default 1000)")
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="Zipf exponent for class repeats; 0 = uniform")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--rows", type=int, default=48,
                        help="tuples per relation")
    parser.add_argument("--domain", type=int, default=8,
                        help="join-attribute domain size")
    parser.add_argument("--skew", type=float, default=0.0,
                        help="data skew inside each relation (join_skew)")
    parser.add_argument("--max-relations", type=int, default=9,
                        help="cap on relations per query")
    parser.add_argument("--shapes", nargs="*", choices=sorted(SHAPES),
                        help="restrict to these shapes (default: all)")
    args = parser.parse_args()
    if args.queries <= 0:
        sys.exit("gen_workload.py: --queries must be positive")

    rng = random.Random(args.seed)
    pool = class_pool(args, rng)
    cdf = zipf_cdf(len(pool), args.zipf)

    print(f"# gen_workload.py --queries {args.queries} --zipf {args.zipf} "
          f"--seed {args.seed} --rows {args.rows} --domain {args.domain} "
          f"--skew {args.skew}")
    print(f"# {len(pool)} classes; format: shape,n,rows,domain,skew,seed")
    used = sorted({shape for shape, *_ in pool})
    stamps = ", ".join(
        f"{shape}={'acyclic' if SHAPES[shape][1] else 'cyclic'}"
        for shape in used)
    print(f"# acyclicity: {stamps}")
    for _ in range(args.queries):
        shape, n, rows, domain, skew, seed = pool[sample(cdf, rng)]
        print(f"{shape},{n},{rows},{domain},{skew},{seed}")


if __name__ == "__main__":
    main()
