#!/usr/bin/env python3
"""Checks docs/SERVING.md's metrics reference against the source tree.

The operator's manual promises a table naming every serving-path
instrument (`serve.*`, `wcoj.*` — the WCOJ executor runs under the
serving tier ladder). This script extracts the metric names registered in
C++ — TAUJOIN_METRIC_COUNT/INCR/GAUGE_ADD/SPAN macros plus direct
GetCounter/GetGauge/GetTimer calls — and the backticked names in
SERVING.md's metrics section, then fails on any difference in either
direction, including kind mismatches (a counter documented as a gauge is
as misleading as an undocumented counter).

Usage: check_serving_docs.py [repo_root]
"""

import pathlib
import re
import sys

PREFIXES = ("serve.", "wcoj.", "acyclic.")

# macro/call → instrument kind
SOURCE_PATTERNS = [
    (re.compile(r'TAUJOIN_METRIC_(?:COUNT|INCR)\(\s*"([^"]+)"'), "counter"),
    (re.compile(r'TAUJOIN_METRIC_GAUGE_ADD\(\s*"([^"]+)"'), "gauge"),
    (re.compile(r'TAUJOIN_METRIC_SPAN\(\s*\w+\s*,\s*"([^"]+)"'), "timer"),
    (re.compile(r'GetCounter\(\s*"([^"]+)"'), "counter"),
    (re.compile(r'GetGauge\(\s*"([^"]+)"'), "gauge"),
    (re.compile(r'GetTimer\(\s*"([^"]+)"'), "timer"),
]

# SERVING.md table row: | `name` | kind | ... |
DOC_ROW = re.compile(r"^\|\s*`([a-z0-9_.]+)`\s*\|\s*(counter|gauge|timer)"
                     r"\s*\|", re.MULTILINE)


def collect_source_metrics(src: pathlib.Path) -> dict[str, str]:
    metrics = {}
    conflicts = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".cc", ".h"):
            continue
        text = path.read_text(encoding="utf-8")
        for pattern, kind in SOURCE_PATTERNS:
            for name in pattern.findall(text):
                if not name.startswith(PREFIXES):
                    continue
                if metrics.get(name, kind) != kind:
                    conflicts.append(
                        f"{name}: registered as both {metrics[name]} and "
                        f"{kind} in source")
                metrics[name] = kind
    if conflicts:
        raise SystemExit("ERROR: " + "\nERROR: ".join(sorted(set(conflicts))))
    return metrics


def collect_doc_metrics(doc_path: pathlib.Path) -> dict[str, str]:
    text = doc_path.read_text(encoding="utf-8")
    return {name: kind for name, kind in DOC_ROW.findall(text)}


def main(argv: list[str]) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 else \
        pathlib.Path(__file__).resolve().parent.parent
    doc_path = root / "docs" / "SERVING.md"
    if not doc_path.is_file():
        print(f"ERROR: {doc_path} does not exist", file=sys.stderr)
        return 1

    source = collect_source_metrics(root / "src")
    documented = collect_doc_metrics(doc_path)

    errors = []
    for name in sorted(set(source) - set(documented)):
        errors.append(f"{name} ({source[name]}) is registered in source "
                      "but missing from docs/SERVING.md")
    for name in sorted(set(documented) - set(source)):
        errors.append(f"{name} is documented in docs/SERVING.md but not "
                      "registered anywhere in src/")
    for name in sorted(set(source) & set(documented)):
        if source[name] != documented[name]:
            errors.append(f"{name} is a {source[name]} in source but "
                          f"documented as a {documented[name]}")

    for err in errors:
        print(f"ERROR: {err}", file=sys.stderr)
    if not errors:
        print(f"docs/SERVING.md: OK — {len(documented)} instruments "
              "documented, all match source")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
