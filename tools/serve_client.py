#!/usr/bin/env python3
"""Load-generator client for the taujoin network query service.

Speaks the framed protocol from docs/SERVING.md (4-byte big-endian length
prefix, JSON payload) against a running `taujoin_server --serve` instance.
Stdlib only — CI uses it to drive a short load from outside the server
process, scrape and grammar-check the /metrics text, and exercise the
graceful drain over the wire.

Usage:
  serve_client.py --port=P [--host=127.0.0.1] [--queries=N] [--threads=T]
                  [--window=W] [--classes=FILE] [--zipf=S] [--seed=N]
                  [--scrape-metrics] [--validate] [--drain] [--json]

  --queries         total queries to send across all threads (default 1000)
  --threads         client connections sending in parallel (default 2)
  --window          pipelined in-flight queries per connection (default 8)
  --classes         file of class specs, one `shape,n,rows,domain,skew,seed`
                    line per class (default: a small builtin pool)
  --scrape-metrics  fetch the `metrics` op and print the Prometheus text
  --validate        grammar-check the scrape (implies --scrape-metrics) and
                    assert all responses were ok
  --drain           finish with a `drain` op and wait for the barrier
  --json            print a machine-readable summary line at the end

Exit status is non-zero if any connection failed, any response was an
error (with --validate), or the metrics scrape was malformed.
"""

import argparse
import json
import random
import socket
import struct
import sys
import threading
import time

BUILTIN_CLASSES = [
    "chain,5,48,8,0,101",
    "chain,7,48,8,0,102",
    "star,5,48,8,0,103",
    "star,6,48,8,0,104",
    "cycle,5,48,8,0,105",
    "cycle,6,48,8,0,106",
    "clique,4,48,8,0,107",
    "clique,5,48,8,0,108",
]


class FramedClient:
    """Blocking framed-protocol connection."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buffer = b""

    def send(self, payload: bytes) -> None:
        self.sock.sendall(struct.pack(">I", len(payload)) + payload)

    def send_json(self, obj: dict) -> None:
        self.send(json.dumps(obj, separators=(",", ":")).encode())

    def recv(self) -> bytes:
        while True:
            if len(self.buffer) >= 4:
                (length,) = struct.unpack(">I", self.buffer[:4])
                if len(self.buffer) >= 4 + length:
                    payload = self.buffer[4:4 + length]
                    self.buffer = self.buffer[4 + length:]
                    return payload
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buffer += chunk

    def recv_json(self) -> dict:
        return json.loads(self.recv().decode())

    def close(self) -> None:
        self.sock.close()


def check_prometheus(text: str) -> list[str]:
    """Validates the Prometheus text-format grammar the server renders:
    `# `-prefixed comment lines, otherwise `name{labels}? value` with a
    taujoin_-prefixed identifier, trailing newline required."""
    errors = []
    if not text.endswith("\n"):
        return ["metrics text does not end with a newline"]
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.startswith("# "):
            continue
        if not line:
            errors.append(f"line {lineno}: empty line")
            continue
        head, sep, value = line.rpartition(" ")
        if not sep or not head:
            errors.append(f"line {lineno}: no space-separated value")
            continue
        name = head.split("{", 1)[0]
        if not name.startswith("taujoin_"):
            errors.append(f"line {lineno}: name {name!r} lacks the "
                          "taujoin_ prefix")
        if not all(c.isalnum() or c == "_" for c in name):
            errors.append(f"line {lineno}: name {name!r} has characters "
                          "outside [a-zA-Z0-9_]")
        try:
            float(value)
        except ValueError:
            errors.append(f"line {lineno}: value {value!r} is not a number")
    return errors


def run_load(args, classes: list[str]) -> dict:
    """Sends the query load; returns aggregate stats."""
    per_thread = [args.queries // args.threads] * args.threads
    for i in range(args.queries % args.threads):
        per_thread[i] += 1

    lock = threading.Lock()
    totals = {"sent": 0, "ok": 0, "errors": 0, "latency_ns": []}
    failures = []

    def worker(index: int, budget: int) -> None:
        rng = random.Random(args.seed + index * 7919)
        try:
            client = FramedClient(args.host, args.port)
        except OSError as e:
            with lock:
                failures.append(f"connection {index}: connect failed: {e}")
            return
        sent_at = {}
        latencies = []
        ok = errors = 0
        next_id = 0
        outstanding = 0
        try:
            while next_id < budget or outstanding > 0:
                while outstanding < args.window and next_id < budget:
                    # Zipf-flavored pick: power-law rank over the pool.
                    rank = int(len(classes) *
                               rng.random() ** max(args.zipf, 0.01))
                    cls = classes[min(rank, len(classes) - 1)]
                    sent_at[next_id] = time.monotonic_ns()
                    client.send_json(
                        {"op": "query", "class": cls, "id": next_id})
                    next_id += 1
                    outstanding += 1
                response = client.recv_json()
                outstanding -= 1
                rid = response.get("id")
                if rid in sent_at:
                    latencies.append(time.monotonic_ns() - sent_at.pop(rid))
                if response.get("ok"):
                    ok += 1
                else:
                    errors += 1
        except (OSError, ConnectionError, json.JSONDecodeError) as e:
            with lock:
                failures.append(f"connection {index}: {e}")
        finally:
            client.close()
        with lock:
            totals["sent"] += next_id
            totals["ok"] += ok
            totals["errors"] += errors
            totals["latency_ns"].extend(latencies)

    threads = [threading.Thread(target=worker, args=(i, n))
               for i, n in enumerate(per_thread)]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.monotonic() - start

    lat = sorted(totals["latency_ns"])
    quantile = (lambda q: lat[min(len(lat) - 1, int(q * len(lat)))]
                if lat else 0)
    return {
        "sent": totals["sent"],
        "ok": totals["ok"],
        "errors": totals["errors"],
        "wall_seconds": round(wall, 6),
        "qps": round(totals["ok"] / wall, 1) if wall > 0 else 0,
        "p50_ns": quantile(0.50),
        "p95_ns": quantile(0.95),
        "p99_ns": quantile(0.99),
        "failures": failures,
    }


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--queries", type=int, default=1000)
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--window", type=int, default=8)
    parser.add_argument("--classes")
    parser.add_argument("--zipf", type=float, default=1.1)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--scrape-metrics", action="store_true")
    parser.add_argument("--validate", action="store_true")
    parser.add_argument("--drain", action="store_true")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args()

    classes = BUILTIN_CLASSES
    if args.classes:
        with open(args.classes, "r", encoding="utf-8") as f:
            classes = [line.strip() for line in f
                       if line.strip() and not line.startswith("#")]
        if not classes:
            print(f"ERROR: {args.classes} holds no class specs",
                  file=sys.stderr)
            return 2

    exit_code = 0
    summary = {}

    if args.queries > 0:
        summary["load"] = run_load(args, classes)
        for failure in summary["load"]["failures"]:
            print(f"ERROR: {failure}", file=sys.stderr)
            exit_code = 1
        if args.validate and summary["load"]["errors"] > 0:
            print(f"ERROR: {summary['load']['errors']} responses were "
                  "errors", file=sys.stderr)
            exit_code = 1

    try:
        tail = FramedClient(args.host, args.port)
    except OSError as e:
        print(f"ERROR: tail connect failed: {e}", file=sys.stderr)
        return 1

    try:
        tail.send_json({"op": "stats"})
        summary["stats"] = tail.recv_json().get("stats", {})

        if args.scrape_metrics or args.validate:
            tail.send_json({"op": "metrics"})
            metrics_text = tail.recv().decode()
            problems = check_prometheus(metrics_text)
            summary["metrics"] = {
                "lines": metrics_text.count("\n"),
                "well_formed": not problems,
            }
            for problem in problems:
                print(f"ERROR: metrics scrape: {problem}", file=sys.stderr)
                exit_code = 1
            if args.scrape_metrics and not args.json:
                sys.stdout.write(metrics_text)

        if args.drain:
            tail.send_json({"op": "drain", "id": -1})
            response = tail.recv_json()
            summary["drain"] = response
            if not response.get("drained"):
                print(f"ERROR: drain did not complete: {response}",
                      file=sys.stderr)
                exit_code = 1
    except (OSError, ConnectionError, json.JSONDecodeError) as e:
        print(f"ERROR: control connection: {e}", file=sys.stderr)
        exit_code = 1
    finally:
        tail.close()

    if args.json:
        print(json.dumps(summary, separators=(",", ":")))
    elif "load" in summary:
        load = summary["load"]
        print(f"serve_client: {load['ok']}/{load['sent']} ok, "
              f"{load['qps']} q/s, p50={load['p50_ns'] / 1e3:.1f}us "
              f"p99={load['p99_ns'] / 1e3:.1f}us over "
              f"{load['wall_seconds']}s")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
