// Experiment E4 — Example 4 (§4): necessity of C1 in Theorem 2. With C2
// alone, the (unique) τ-optimum strategy may use a Cartesian product.

#include <cstdio>

#include "core/conditions.h"
#include "core/cost.h"
#include "core/properties.h"
#include "core/strategy_parser.h"
#include "optimize/exhaustive.h"
#include "report/table.h"
#include "workload/paper_data.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  Database db = Example4Database();
  JoinCache cache(&db);

  PrintSection("E4: Example 4 strategy costs (paper vs measured)");
  {
    struct Row {
      const char* text;
      uint64_t paper_step;
      uint64_t paper_total;
    };
    // Paper: τ(S1) = 9 + 5 = 14, τ(S2) = 7 + 5 = 12, τ(S3) = 6 + 5 = 11.
    Row rows[] = {
        {"((GS SC) CL)", 9, 14},
        {"(GS (SC CL))", 7, 12},
        {"((GS CL) SC)", 6, 11},
    };
    ReportTable t({"strategy", "first step (paper)", "first step (measured)",
                   "tau (paper)", "tau (measured)", "uses CP"});
    for (const Row& r : rows) {
      Strategy s = ParseStrategyOrDie(db, r.text);
      t.Row()
          .Cell(s.ToString(db))
          .Cell(r.paper_step)
          .Cell(StepCosts(s, cache)[0])
          .Cell(r.paper_total)
          .Cell(TauCost(s, cache))
          .Cell(UsesCartesianProducts(s, db.scheme()) ? "yes" : "no");
    }
    t.Print();
  }

  PrintSection("E4: claims");
  {
    auto optimum =
        OptimizeExhaustive(cache, db.scheme().full_mask(), StrategySpace::kAll);
    auto no_cp = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                    StrategySpace::kNoCartesian);
    ReportTable t({"claim", "paper", "measured"});
    t.Row().Cell("optimum tau").Cell(11).Cell(optimum->cost);
    t.Row()
        .Cell("optimum uses a Cartesian product")
        .Cell("yes")
        .Cell(UsesCartesianProducts(optimum->strategy, db.scheme()) ? "yes"
                                                                    : "no");
    t.Row()
        .Cell("best no-CP strategy is worse")
        .Cell("yes")
        .Cell(no_cp->cost > optimum->cost ? "yes" : "no");
    t.Row().Cell("satisfies C2").Cell("yes").Cell(
        CheckC2(cache).satisfied ? "yes" : "no");
    t.Row().Cell("satisfies C1").Cell("no").Cell(
        CheckC1(cache).satisfied ? "yes" : "no");
    t.Print();
    std::printf(
        "\nConclusion (paper): an optimizer that never considers Cartesian\n"
        "products can miss the tau-optimum when C1 fails — C1 is necessary\n"
        "in Theorem 2.\n");
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
