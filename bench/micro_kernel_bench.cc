// Join-kernel microbenchmark: times the morsel-driven parallel
// NaturalJoin / CountNaturalJoin (DESIGN.md §12) against the serial
// kernels across thread counts on three key families — uniform 1-attr
// keys, Zipf-skewed 1-attr keys (one heavy-hitter partition), and a
// 2-attr packed-u64 "clique" key — and writes BENCH_kernels.json
// (schema taujoin-kernel-bench/v1): tuples/s per run, partition
// fan-out, and speedups vs. the 1-thread baseline (×1000 integers).
//
// Every parallel run is sanity-checked against the serial output (row
// count and τ must match exactly — the bit-identity contract has its
// own test; here a mismatch aborts the artifact) before any timing is
// trusted. The context block records hardware_concurrency because
// speedups are only meaningful where the cores exist:
// tools/check_bench_metrics.py enforces the clique ≥3x-at-8-threads
// criterion only when the recording machine had ≥ 8 hardware threads.
//
// The artifact carries the same Release gate as the other bench
// binaries: a non-NDEBUG build refuses to write JSON unless
// TAUJOIN_ALLOW_NONRELEASE_JSON=1.
//
// Usage:
//   micro_kernel_bench [--rows=120000] [--reps=3] [--seed=42]
//                      [--out=BENCH_kernels.json]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "relational/count_join.h"
#include "relational/join.h"
#include "relational/morsel.h"
#include "relational/relation.h"

namespace taujoin {
namespace {

#ifdef NDEBUG
constexpr bool kReleaseBuild = true;
constexpr const char* kBuildType = "release";
#else
constexpr bool kReleaseBuild = false;
constexpr const char* kBuildType = "debug";
#endif

struct BenchConfig {
  size_t rows = 120000;
  int reps = 3;
  uint64_t seed = 42;
  std::string out_path = "BENCH_kernels.json";
};

/// One relation of `rows` distinct tuples: `key_width` join-key columns
/// drawn by `draw`, plus a serial payload column that makes every row
/// unique (relations are sets — without it skewed keys would collapse).
template <typename DrawKey>
Relation KeyedRelation(const std::vector<std::string>& attrs, size_t rows,
                       size_t key_width, DrawKey&& draw) {
  Relation r{Schema{std::vector<std::string>(attrs.begin(), attrs.end())}};
  r.Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> values;
    values.reserve(attrs.size());
    for (size_t c = 0; c < key_width; ++c) {
      values.push_back(Value(draw(c)));
    }
    values.push_back(Value(static_cast<int64_t>(i)));
    // Schema sorts attributes; FromRows-style reordering is avoided by
    // choosing key attribute names that sort before the payload name.
    r.Insert(Tuple(std::move(values)));
  }
  return r;
}

struct Family {
  std::string name;
  Relation left;
  Relation right;
};

std::vector<Family> MakeFamilies(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<Family> families;

  // uniform: 1-attr key, ~2 matches per key per side.
  const int64_t domain = std::max<int64_t>(1, static_cast<int64_t>(rows) / 2);
  const auto uniform = [&](size_t) {
    return static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(domain)));
  };
  families.push_back({"uniform",
                      KeyedRelation({"K", "L"}, rows, 1, uniform),
                      KeyedRelation({"K", "R"}, rows, 1, uniform)});

  // skewed: uniform build keys, Zipf probe keys — most probe rows hammer
  // one radix partition's table while the output stays ≈ linear (a
  // Zipf×Zipf self-join would square the heavy hitter instead and
  // benchmark output materialization, not the probe loop).
  const auto zipf = [&](size_t) {
    return static_cast<int64_t>(
        rng.Zipf(static_cast<uint64_t>(domain), 1.2));
  };
  families.push_back({"skewed",
                      KeyedRelation({"K", "L"}, rows, 1, uniform),
                      KeyedRelation({"K", "R"}, rows, 1, zipf)});

  // clique: 2-attr key (the packed-u64 fast path), as produced by the
  // later steps of a clique-query fold where intermediates share several
  // attributes with the next relation.
  const int64_t half = std::max<int64_t>(
      2, static_cast<int64_t>(std::sqrt(static_cast<double>(rows) / 2.0)));
  const auto pair_key = [&](size_t) {
    return static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(half)));
  };
  families.push_back({"clique",
                      KeyedRelation({"J", "K", "L"}, rows, 2, pair_key),
                      KeyedRelation({"J", "K", "R"}, rows, 2, pair_key)});
  return families;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct RunRecord {
  std::string family;
  std::string kernel;
  /// The requested thread count (the sweep point). Oversubscribed points
  /// (threads > hardware_concurrency) still run — the pool spawns the
  /// workers regardless — but their speedups measure scheduling, not
  /// parallelism; the checker flags them against the recorded
  /// hardware_concurrency.
  int threads = 0;
  /// What actually executed: pool workers + the participating caller.
  int effective_threads = 0;
  size_t partition_fanout = 0;
  uint64_t best_ns = 0;
  uint64_t tuples_per_sec = 0;
  uint64_t output_rows = 0;
  uint64_t speedup_x1000 = 0;
};

int Main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--rows=", 0) == 0) {
      config.rows = static_cast<size_t>(std::atoll(value("--rows=").c_str()));
    } else if (arg.rfind("--reps=", 0) == 0) {
      config.reps = std::atoi(value("--reps=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed =
          static_cast<uint64_t>(std::atoll(value("--seed=").c_str()));
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out_path = value("--out=");
    } else {
      std::fprintf(stderr, "micro_kernel_bench: unknown argument %s\n",
                   arg.c_str());
      return 1;
    }
  }
  if (config.rows == 0 || config.reps <= 0) {
    std::fprintf(stderr,
                 "micro_kernel_bench: --rows and --reps must be positive\n");
    return 1;
  }

  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const size_t morsel_rows = ResolveMorselRows(0);
  std::fprintf(stderr,
               "micro_kernel_bench: rows=%zu reps=%d build=%s hw=%d "
               "morsel=%zu\n",
               config.rows, config.reps, kBuildType, hw, morsel_rows);

  std::vector<Family> families = MakeFamilies(config.rows, config.seed);
  const int kThreadCounts[] = {1, 2, 4, 8};
  std::vector<RunRecord> runs;

  for (const Family& family : families) {
    const size_t input_rows = family.left.size() + family.right.size();
    // Serial ground truth for the sanity check and the speedup baseline.
    const Relation serial_join = NaturalJoin(
        family.left, family.right, JoinAlgorithm::kHash,
        KernelParallelism{/*threads=*/1});
    const uint64_t serial_count = CountNaturalJoin(
        family.left, family.right, KernelParallelism{/*threads=*/1});
    if (serial_join.Tau() != serial_count) {
      std::fprintf(stderr, "micro_kernel_bench: %s: count %llu != join %llu\n",
                   family.name.c_str(),
                   static_cast<unsigned long long>(serial_count),
                   static_cast<unsigned long long>(serial_join.Tau()));
      return 1;
    }

    uint64_t base_join_ns = 0;
    uint64_t base_count_ns = 0;
    for (const int threads : kThreadCounts) {
      ThreadPool pool(threads - 1);
      KernelParallelism par;
      par.threads = threads;
      par.pool = &pool;
      const int effective_threads = pool.worker_count() + 1;
      const size_t fanout =
          threads > 1 ? size_t{1} << RadixBits(threads) : 1;

      uint64_t join_ns = UINT64_MAX;
      uint64_t join_rows = 0;
      for (int rep = 0; rep < config.reps; ++rep) {
        const uint64_t start = NowNs();
        const Relation joined = NaturalJoin(family.left, family.right,
                                            JoinAlgorithm::kHash, par);
        join_ns = std::min(join_ns, NowNs() - start);
        join_rows = joined.size();
        if (joined.size() != serial_join.size()) {
          std::fprintf(stderr,
                       "micro_kernel_bench: %s threads=%d: %zu rows, serial "
                       "%zu — parallel kernel diverged\n",
                       family.name.c_str(), threads, joined.size(),
                       serial_join.size());
          return 1;
        }
      }

      uint64_t count_ns = UINT64_MAX;
      for (int rep = 0; rep < config.reps; ++rep) {
        const uint64_t start = NowNs();
        const uint64_t count =
            CountNaturalJoin(family.left, family.right, par);
        count_ns = std::min(count_ns, NowNs() - start);
        if (count != serial_count) {
          std::fprintf(stderr,
                       "micro_kernel_bench: %s threads=%d: count diverged\n",
                       family.name.c_str(), threads);
          return 1;
        }
      }

      if (threads == 1) {
        base_join_ns = join_ns;
        base_count_ns = count_ns;
      }
      const auto record = [&](const char* kernel, uint64_t ns,
                              uint64_t base_ns, uint64_t out_rows) {
        RunRecord run;
        run.family = family.name;
        run.kernel = kernel;
        run.threads = threads;
        run.effective_threads = effective_threads;
        run.partition_fanout = fanout;
        run.best_ns = ns;
        run.tuples_per_sec =
            ns == 0 ? 0
                    : static_cast<uint64_t>(
                          static_cast<double>(input_rows) * 1e9 /
                          static_cast<double>(ns));
        run.output_rows = out_rows;
        run.speedup_x1000 =
            ns == 0 ? 0 : base_ns * 1000 / ns;
        std::fprintf(stderr,
                     "  %-7s %-5s threads=%d (effective %d) fanout=%zu "
                     "best=%.2fms (%.2fM tuples/s, %.2fx)\n",
                     family.name.c_str(), kernel, threads, effective_threads,
                     fanout,
                     static_cast<double>(ns) / 1e6,
                     static_cast<double>(run.tuples_per_sec) / 1e6,
                     static_cast<double>(run.speedup_x1000) / 1e3);
        runs.push_back(std::move(run));
      };
      record("join", join_ns, base_join_ns, join_rows);
      record("count", count_ns, base_count_ns, serial_count);
    }
  }

  const char* allow = std::getenv("TAUJOIN_ALLOW_NONRELEASE_JSON");
  const bool allow_nonrelease =
      allow != nullptr && allow[0] != '\0' && std::string(allow) != "0";
  if (!kReleaseBuild && !allow_nonrelease) {
    std::fprintf(stderr,
                 "\n*** TAUJOIN WARNING ***\n"
                 "Non-Release build: refusing to write %s (set "
                 "TAUJOIN_ALLOW_NONRELEASE_JSON=1 to override).\n",
                 config.out_path.c_str());
    MaybeReportProcessMetrics();
    return 0;
  }

  std::string json = "{\n";
  json += "  \"schema\": \"taujoin-kernel-bench/v1\",\n";
  json += "  \"context\": {\n";
  json += std::string("    \"taujoin_build_type\": \"") + kBuildType +
          "\",\n";
  json += "    \"rows_per_side\": " + std::to_string(config.rows) + ",\n";
  json += "    \"reps\": " + std::to_string(config.reps) + ",\n";
  json += "    \"seed\": " + std::to_string(config.seed) + ",\n";
  json += "    \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "    \"morsel_rows\": " + std::to_string(morsel_rows) + "\n";
  json += "  },\n";
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& run = runs[i];
    json += "    {\"family\": \"" + run.family + "\", \"kernel\": \"" +
            run.kernel + "\", \"threads\": " + std::to_string(run.threads) +
            ", \"effective_threads\": " +
            std::to_string(run.effective_threads) +
            ", \"partition_fanout\": " +
            std::to_string(run.partition_fanout) +
            ", \"best_ns\": " + std::to_string(run.best_ns) +
            ", \"tuples_per_sec\": " + std::to_string(run.tuples_per_sec) +
            ", \"output_rows\": " + std::to_string(run.output_rows) +
            ", \"speedup_x1000\": " + std::to_string(run.speedup_x1000) +
            "}";
    json += (i + 1 < runs.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"taujoin_metrics\": " +
          MetricsRegistry::Global().Snapshot().ToJson() + "\n";
  json += "}\n";

  std::ofstream out(config.out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "micro_kernel_bench: cannot write %s\n",
                 config.out_path.c_str());
    return 1;
  }
  out << json;
  std::fprintf(stderr, "micro_kernel_bench: wrote %s\n",
               config.out_path.c_str());
  MaybeReportProcessMetrics();
  return 0;
}

}  // namespace
}  // namespace taujoin

int main(int argc, char** argv) { return taujoin::Main(argc, argv); }
