// M1 — google-benchmark microbenchmarks for the relational substrate: the
// three join algorithms, semijoin, projection, and the counting join
// kernel against its materializing counterpart, across input sizes and
// match rates.
//
// Unless the caller passes its own --benchmark_out, results are also
// written to BENCH_join.json in the working directory so runs leave a
// machine-readable artifact.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "relational/count_join.h"
#include "relational/join.h"
#include "relational/operators.h"

namespace taujoin {
namespace {

Relation MakeRelation(const Schema& schema, int rows, int domain,
                      uint64_t seed) {
  Rng rng(seed);
  Relation r(schema);
  int attempts = 0;
  while (static_cast<int>(r.size()) < rows && attempts < rows * 50) {
    std::vector<Value> values;
    for (size_t i = 0; i < schema.size(); ++i) {
      values.push_back(Value(rng.UniformInt(0, domain - 1)));
    }
    r.Insert(Tuple(std::move(values)));
    ++attempts;
  }
  return r;
}

void BM_HashJoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, rows, 1);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, rows, 2);
  for (auto _ : state) {
    Relation result = NaturalJoin(left, right, JoinAlgorithm::kHash);
    benchmark::DoNotOptimize(result.size());
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
}
BENCHMARK(BM_HashJoin)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SortMergeJoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, rows, 1);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, rows, 2);
  for (auto _ : state) {
    Relation result = NaturalJoin(left, right, JoinAlgorithm::kSortMerge);
    benchmark::DoNotOptimize(result.size());
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
}
BENCHMARK(BM_SortMergeJoin)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_NestedLoopJoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, rows, 1);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, rows, 2);
  for (auto _ : state) {
    Relation result = NaturalJoin(left, right, JoinAlgorithm::kNestedLoop);
    benchmark::DoNotOptimize(result.size());
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
}
BENCHMARK(BM_NestedLoopJoin)->Arg(64)->Arg(256)->Arg(1024);

void BM_HighFanoutJoin(benchmark::State& state) {
  // Skewed join with a large output (domain 8 → many matches per key).
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, 8, 3);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, 8, 4);
  for (auto _ : state) {
    Relation result = NaturalJoin(left, right);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_HighFanoutJoin)->Arg(64)->Arg(256);

// Counting vs materializing the same high-fanout join: CountNaturalJoin
// computes |R ⋈ S| from per-key group sizes without ever building output
// tuples, so its advantage grows with the output/input ratio.
void BM_CountHighFanoutJoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, 8, 3);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, 8, 4);
  for (auto _ : state) {
    uint64_t count = CountNaturalJoin(left, right);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_CountHighFanoutJoin)->Arg(64)->Arg(256);

void BM_MaterializeThenCount(benchmark::State& state) {
  // The baseline the counting kernel replaces: build the join, read size().
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, 8, 3);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, 8, 4);
  for (auto _ : state) {
    uint64_t count = NaturalJoin(left, right).Tau();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_MaterializeThenCount)->Arg(64)->Arg(256);

void BM_GroupSizeHistogram(benchmark::State& state) {
  // Building the per-join-key histogram alone (the reusable half of
  // CountJoinFromHistograms).
  const int rows = static_cast<int>(state.range(0));
  Relation r = MakeRelation(Schema::Parse("AB"), rows, 8, 3);
  Schema key = Schema::Parse("B");
  for (auto _ : state) {
    JoinKeyHistogram h = GroupSizesByAttributes(r, key);
    benchmark::DoNotOptimize(h.size());
  }
}
BENCHMARK(BM_GroupSizeHistogram)->Arg(256)->Arg(4096);

void BM_Semijoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, rows, 5);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, rows, 6);
  for (auto _ : state) {
    Relation result = Semijoin(left, right);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_Semijoin)->Arg(256)->Arg(4096);

void BM_Project(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation r = MakeRelation(Schema::Parse("ABCD"), rows, 16, 7);
  Schema target = Schema::Parse("BD");
  for (auto _ : state) {
    Relation result = Project(r, target);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_Project)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace taujoin

int main(int argc, char** argv) {
  // Default to emitting a JSON artifact next to the binary's working
  // directory; an explicit --benchmark_out on the command line wins.
  std::vector<char*> args(argv, argv + argc);
  std::string out = "--benchmark_out=BENCH_join.json";
  std::string format = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(format.data());
  }
  int arg_count = static_cast<int>(args.size());
  benchmark::Initialize(&arg_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(arg_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
