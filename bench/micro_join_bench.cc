// M1 — google-benchmark microbenchmarks for the relational substrate: the
// three join algorithms, semijoin, projection, and the counting join
// kernel against its materializing counterpart, across input sizes and
// match rates.
//
// Unless the caller passes its own --benchmark_out, results are also
// written to BENCH_join.json in the working directory so runs leave a
// machine-readable artifact.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_main.h"
#include "common/rng.h"
#include "relational/count_join.h"
#include "relational/join.h"
#include "relational/operators.h"

namespace taujoin {
namespace {

/// Input-side throughput counters: tuples consumed and columnar bytes
/// scanned per second of benchmark time. Iteration-invariant rates, so
/// google-benchmark divides by elapsed time itself.
void SetThroughputCounters(benchmark::State& state,
                           std::initializer_list<const Relation*> inputs) {
  double tuples = 0, bytes = 0;
  for (const Relation* r : inputs) {
    tuples += static_cast<double>(r->size());
    bytes += static_cast<double>(r->size() * r->stride() * sizeof(uint32_t));
  }
  state.counters["tuples_per_second"] = benchmark::Counter(
      tuples, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["bytes_per_second"] = benchmark::Counter(
      bytes, benchmark::Counter::kIsIterationInvariantRate);
}

Relation MakeRelation(const Schema& schema, int rows, int domain,
                      uint64_t seed) {
  Rng rng(seed);
  Relation r(schema);
  int attempts = 0;
  while (static_cast<int>(r.size()) < rows && attempts < rows * 50) {
    std::vector<Value> values;
    for (size_t i = 0; i < schema.size(); ++i) {
      values.push_back(Value(rng.UniformInt(0, domain - 1)));
    }
    r.Insert(Tuple(std::move(values)));
    ++attempts;
  }
  return r;
}

void BM_HashJoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, rows, 1);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, rows, 2);
  for (auto _ : state) {
    Relation result = NaturalJoin(left, right, JoinAlgorithm::kHash);
    benchmark::DoNotOptimize(result.size());
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
  SetThroughputCounters(state, {&left, &right});
}
BENCHMARK(BM_HashJoin)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SortMergeJoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, rows, 1);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, rows, 2);
  for (auto _ : state) {
    Relation result = NaturalJoin(left, right, JoinAlgorithm::kSortMerge);
    benchmark::DoNotOptimize(result.size());
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
  SetThroughputCounters(state, {&left, &right});
}
BENCHMARK(BM_SortMergeJoin)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_NestedLoopJoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, rows, 1);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, rows, 2);
  for (auto _ : state) {
    Relation result = NaturalJoin(left, right, JoinAlgorithm::kNestedLoop);
    benchmark::DoNotOptimize(result.size());
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
  SetThroughputCounters(state, {&left, &right});
}
BENCHMARK(BM_NestedLoopJoin)->Arg(64)->Arg(256)->Arg(1024);

void BM_HighFanoutJoin(benchmark::State& state) {
  // Skewed join with a large output (domain 8 → many matches per key).
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, 8, 3);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, 8, 4);
  for (auto _ : state) {
    Relation result = NaturalJoin(left, right);
    benchmark::DoNotOptimize(result.size());
  }
  SetThroughputCounters(state, {&left, &right});
}
BENCHMARK(BM_HighFanoutJoin)->Arg(64)->Arg(256);

// Counting vs materializing the same high-fanout join: CountNaturalJoin
// computes |R ⋈ S| from per-key group sizes without ever building output
// tuples, so its advantage grows with the output/input ratio.
void BM_CountHighFanoutJoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, 8, 3);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, 8, 4);
  for (auto _ : state) {
    uint64_t count = CountNaturalJoin(left, right);
    benchmark::DoNotOptimize(count);
  }
  SetThroughputCounters(state, {&left, &right});
}
BENCHMARK(BM_CountHighFanoutJoin)->Arg(64)->Arg(256);

void BM_MaterializeThenCount(benchmark::State& state) {
  // The baseline the counting kernel replaces: build the join, read size().
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, 8, 3);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, 8, 4);
  for (auto _ : state) {
    uint64_t count = NaturalJoin(left, right).Tau();
    benchmark::DoNotOptimize(count);
  }
  SetThroughputCounters(state, {&left, &right});
}
BENCHMARK(BM_MaterializeThenCount)->Arg(64)->Arg(256);

void BM_GroupSizeHistogram(benchmark::State& state) {
  // Building the per-join-key histogram alone (the reusable half of
  // CountJoinFromHistograms).
  const int rows = static_cast<int>(state.range(0));
  Relation r = MakeRelation(Schema::Parse("AB"), rows, 8, 3);
  Schema key = Schema::Parse("B");
  for (auto _ : state) {
    JoinKeyHistogram h = GroupSizesByAttributes(r, key);
    benchmark::DoNotOptimize(h.size());
  }
  SetThroughputCounters(state, {&r});
}
BENCHMARK(BM_GroupSizeHistogram)->Arg(256)->Arg(4096);

void BM_Semijoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, rows, 5);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, rows, 6);
  for (auto _ : state) {
    Relation result = Semijoin(left, right);
    benchmark::DoNotOptimize(result.size());
  }
  SetThroughputCounters(state, {&left, &right});
}
BENCHMARK(BM_Semijoin)->Arg(256)->Arg(4096);

void BM_Project(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation r = MakeRelation(Schema::Parse("ABCD"), rows, 16, 7);
  Schema target = Schema::Parse("BD");
  for (auto _ : state) {
    Relation result = Project(r, target);
    benchmark::DoNotOptimize(result.size());
  }
  SetThroughputCounters(state, {&r});
}
BENCHMARK(BM_Project)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace taujoin

int main(int argc, char** argv) {
  return taujoin::bench::RunBenchmarks(argc, argv, "BENCH_join.json");
}
