// M1 — google-benchmark microbenchmarks for the relational substrate: the
// three join algorithms, semijoin, and projection, across input sizes and
// match rates.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "relational/join.h"
#include "relational/operators.h"

namespace taujoin {
namespace {

Relation MakeRelation(const Schema& schema, int rows, int domain,
                      uint64_t seed) {
  Rng rng(seed);
  Relation r(schema);
  int attempts = 0;
  while (static_cast<int>(r.size()) < rows && attempts < rows * 50) {
    std::vector<Value> values;
    for (size_t i = 0; i < schema.size(); ++i) {
      values.push_back(Value(rng.UniformInt(0, domain - 1)));
    }
    r.Insert(Tuple(std::move(values)));
    ++attempts;
  }
  return r;
}

void BM_HashJoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, rows, 1);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, rows, 2);
  for (auto _ : state) {
    Relation result = NaturalJoin(left, right, JoinAlgorithm::kHash);
    benchmark::DoNotOptimize(result.size());
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
}
BENCHMARK(BM_HashJoin)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SortMergeJoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, rows, 1);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, rows, 2);
  for (auto _ : state) {
    Relation result = NaturalJoin(left, right, JoinAlgorithm::kSortMerge);
    benchmark::DoNotOptimize(result.size());
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
}
BENCHMARK(BM_SortMergeJoin)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_NestedLoopJoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, rows, 1);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, rows, 2);
  for (auto _ : state) {
    Relation result = NaturalJoin(left, right, JoinAlgorithm::kNestedLoop);
    benchmark::DoNotOptimize(result.size());
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
}
BENCHMARK(BM_NestedLoopJoin)->Arg(64)->Arg(256)->Arg(1024);

void BM_HighFanoutJoin(benchmark::State& state) {
  // Skewed join with a large output (domain 8 → many matches per key).
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, 8, 3);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, 8, 4);
  for (auto _ : state) {
    Relation result = NaturalJoin(left, right);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_HighFanoutJoin)->Arg(64)->Arg(256);

void BM_Semijoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation left = MakeRelation(Schema::Parse("AB"), rows, rows, 5);
  Relation right = MakeRelation(Schema::Parse("BC"), rows, rows, 6);
  for (auto _ : state) {
    Relation result = Semijoin(left, right);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_Semijoin)->Arg(256)->Arg(4096);

void BM_Project(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Relation r = MakeRelation(Schema::Parse("ABCD"), rows, 16, 7);
  Schema target = Schema::Parse("BD");
  for (auto _ : state) {
    Relation result = Project(r, target);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_Project)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace taujoin

BENCHMARK_MAIN();
