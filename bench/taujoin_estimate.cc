// Estimation-regret benchmark: runs the exp_regret protocol (every size
// model drives the same bushy DP; plans are scored with exact τ) across
// the chain/star/cycle/clique families and writes BENCH_estimate.json
// (schema taujoin-estimate-bench/v1) with per-family, per-model regret
// summaries plus the process metrics snapshot. Regret ratios are reported
// ×1000 as integers so the checker can compare them exactly.
//
// The artifact carries the same Release gate as the other JSON emitters
// (see bench_main.h): a non-NDEBUG build refuses to write unless
// TAUJOIN_ALLOW_NONRELEASE_JSON=1.
//
// Usage:
//   taujoin_estimate [--trials=16] [--n=6] [--rows=24] [--domain=6]
//                    [--skew=1.0] [--seed=3] [--out=BENCH_estimate.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/cost.h"
#include "optimize/dp.h"
#include "optimize/size_model.h"
#include "report/stats.h"
#include "workload/generator.h"

namespace taujoin {
namespace {

#ifdef NDEBUG
constexpr bool kReleaseBuild = true;
constexpr const char* kBuildType = "release";
#else
constexpr bool kReleaseBuild = false;
constexpr const char* kBuildType = "debug";
#endif

struct BenchConfig {
  int trials = 16;
  int relation_count = 6;
  int rows_per_relation = 24;
  int join_domain = 6;
  double join_skew = 1.0;
  uint64_t seed = 3;
  std::string out_path = "BENCH_estimate.json";
};

struct ModelSummary {
  std::string model;
  SampleStats regret;
  int plans_differ = 0;
};

struct FamilySummary {
  std::string family;
  int trials = 0;  ///< trials with τ_opt > 0 (the scored population)
  std::vector<ModelSummary> models;
};

uint64_t RatioX1000(double ratio) {
  return static_cast<uint64_t>(ratio * 1000.0 + 0.5);
}

FamilySummary RunFamily(QueryShape shape, const BenchConfig& config) {
  FamilySummary family;
  family.family = QueryShapeToString(shape);
  for (const char* name : {"exact", "independence", "sketch", "simpli2"}) {
    family.models.push_back({name, SampleStats{}, 0});
  }
  for (int trial = 0; trial < config.trials; ++trial) {
    Rng rng(config.seed + static_cast<uint64_t>(trial) * 5167 +
            static_cast<uint64_t>(shape) * 29);
    GeneratorOptions options;
    options.shape = shape;
    options.relation_count = config.relation_count;
    options.rows_per_relation = config.rows_per_relation;
    options.join_domain = config.join_domain;
    options.join_skew = config.join_skew;
    Database db = RandomDatabase(options, rng);
    CostEngine engine(&db);
    const DatabaseStats stats = BuildDatabaseStats(db);

    ExactSizeModel exact(&engine);
    IndependenceSizeModel independence(&db);
    SketchSizeModel sketch(&stats);
    SimpliSquaredModel simpli = SimpliSquaredModel::FromStats(stats);
    SizeModel* models[] = {&exact, &independence, &sketch, &simpli};

    const RelMask mask = db.scheme().full_mask();
    const DpOptions space(SearchSpace::kBushy, /*allow_cartesian=*/true);
    auto optimal = OptimizeDp(db.scheme(), mask, exact, space);
    if (!optimal || optimal->cost == 0) continue;  // nothing to score
    ++family.trials;
    for (size_t m = 0; m < family.models.size(); ++m) {
      auto plan = OptimizeDp(db.scheme(), mask, *models[m], space);
      if (!plan) continue;
      const uint64_t true_tau = TauCost(plan->strategy, engine);
      family.models[m].regret.Add(static_cast<double>(true_tau) /
                                  static_cast<double>(optimal->cost));
      if (!plan->strategy.EquivalentTo(optimal->strategy)) {
        ++family.models[m].plans_differ;
      }
    }
  }
  return family;
}

int Main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--trials=", 0) == 0) {
      config.trials = std::atoi(value("--trials=").c_str());
    } else if (arg.rfind("--n=", 0) == 0) {
      config.relation_count = std::atoi(value("--n=").c_str());
    } else if (arg.rfind("--rows=", 0) == 0) {
      config.rows_per_relation = std::atoi(value("--rows=").c_str());
    } else if (arg.rfind("--domain=", 0) == 0) {
      config.join_domain = std::atoi(value("--domain=").c_str());
    } else if (arg.rfind("--skew=", 0) == 0) {
      config.join_skew = std::atof(value("--skew=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = static_cast<uint64_t>(std::atoll(value("--seed=").c_str()));
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out_path = value("--out=");
    } else {
      std::fprintf(stderr, "taujoin_estimate: unknown argument %s\n",
                   arg.c_str());
      return 1;
    }
  }
  if (config.trials <= 0 || config.relation_count < 2 ||
      config.relation_count > 14) {
    std::fprintf(stderr,
                 "taujoin_estimate: need --trials > 0 and 2 <= --n <= 14\n");
    return 1;
  }

  std::fprintf(stderr, "taujoin_estimate: %d trials/family, n=%d, build=%s\n",
               config.trials, config.relation_count, kBuildType);

  std::vector<FamilySummary> families;
  for (const QueryShape shape : {QueryShape::kChain, QueryShape::kStar,
                                 QueryShape::kCycle, QueryShape::kClique}) {
    FamilySummary family = RunFamily(shape, config);
    for (const ModelSummary& model : family.models) {
      std::fprintf(stderr,
                   "  %-6s %-12s regret p50=%.3f p90=%.3f max=%.3f "
                   "differ=%d/%d\n",
                   family.family.c_str(), model.model.c_str(),
                   model.regret.Median(), model.regret.Percentile(90),
                   model.regret.Max(), model.plans_differ, family.trials);
    }
    families.push_back(std::move(family));
  }

  const char* allow = std::getenv("TAUJOIN_ALLOW_NONRELEASE_JSON");
  const bool allow_nonrelease =
      allow != nullptr && allow[0] != '\0' && std::string(allow) != "0";
  if (!kReleaseBuild && !allow_nonrelease) {
    std::fprintf(stderr,
                 "\n*** TAUJOIN WARNING ***\n"
                 "Non-Release build: refusing to write %s (set "
                 "TAUJOIN_ALLOW_NONRELEASE_JSON=1 to override).\n",
                 config.out_path.c_str());
    MaybeReportProcessMetrics();
    return 0;
  }

  std::string json = "{\n";
  json += "  \"schema\": \"taujoin-estimate-bench/v1\",\n";
  json += "  \"context\": {\n";
  json += std::string("    \"taujoin_build_type\": \"") + kBuildType + "\",\n";
  json += "    \"trials\": " + std::to_string(config.trials) + ",\n";
  json +=
      "    \"relation_count\": " + std::to_string(config.relation_count) +
      ",\n";
  json += "    \"rows_per_relation\": " +
          std::to_string(config.rows_per_relation) + ",\n";
  json += "    \"join_domain\": " + std::to_string(config.join_domain) + ",\n";
  json += "    \"join_skew\": " + std::to_string(config.join_skew) + ",\n";
  json += "    \"seed\": " + std::to_string(config.seed) + "\n";
  json += "  },\n";
  json += "  \"families\": [\n";
  for (size_t f = 0; f < families.size(); ++f) {
    const FamilySummary& family = families[f];
    json += "    {\"family\": \"" + family.family + "\", \"trials\": " +
            std::to_string(family.trials) + ", \"models\": [\n";
    for (size_t m = 0; m < family.models.size(); ++m) {
      const ModelSummary& model = family.models[m];
      json += "      {\"model\": \"" + model.model + "\"";
      json += ", \"regret_p50_x1000\": " +
              std::to_string(RatioX1000(model.regret.Median()));
      json += ", \"regret_p90_x1000\": " +
              std::to_string(RatioX1000(model.regret.Percentile(90)));
      json += ", \"regret_max_x1000\": " +
              std::to_string(RatioX1000(model.regret.Max()));
      json += ", \"plans_differ\": " + std::to_string(model.plans_differ);
      json += "}";
      json += (m + 1 < family.models.size()) ? ",\n" : "\n";
    }
    json += "    ]}";
    json += (f + 1 < families.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"taujoin_metrics\": " +
          MetricsRegistry::Global().Snapshot().ToJson() + "\n";
  json += "}\n";

  std::ofstream out(config.out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "taujoin_estimate: cannot write %s\n",
                 config.out_path.c_str());
    return 1;
  }
  out << json;
  std::fprintf(stderr, "taujoin_estimate: wrote %s\n", config.out_path.c_str());
  MaybeReportProcessMetrics();
  return 0;
}

}  // namespace
}  // namespace taujoin

int main(int argc, char** argv) { return taujoin::Main(argc, argv); }
