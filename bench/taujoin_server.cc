// Network-serving benchmark + standalone server binary.
//
// Default (--bench) mode starts an in-process Server on an ephemeral
// loopback port and drives it with a C++ client load generator: a warmup
// pass touching every class once, then a saturation curve of load points
// with increasing concurrency (connections x pipeline window), splitting
// --queries across the points. Each load point reports q/s and
// client-observed latency percentiles; the run ends with a stats scrape, a
// `metrics` scrape validated against the Prometheus text grammar, and a
// graceful drain asserting that every admitted query completed (the
// zero-dropped-queries criterion). Writes BENCH_serve_net.json (schema
// taujoin-serve-net-bench/v1, validated by tools/check_bench_metrics.py)
// under the same Release gate as every other bench artifact.
//
// --serve mode runs the server standalone for external clients
// (tools/serve_client.py): prints the bound port, installs the
// SIGTERM/SIGINT drain handler, and blocks until drained.
//
// Usage:
//   taujoin_server [--bench] [--queries=1000000] [--zipf=1.1] [--seed=42]
//                  [--shards=N] [--queue-depth=N] [--execute]
//                  [--cold-model=sketch] [--out=BENCH_serve_net.json]
//   taujoin_server --serve [--port=7411] [--shards=N] [--execute] ...

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "serve/workload_driver.h"

namespace taujoin {
namespace {

#ifdef NDEBUG
constexpr bool kReleaseBuild = true;
constexpr const char* kBuildType = "release";
#else
constexpr bool kReleaseBuild = false;
constexpr const char* kBuildType = "debug";
#endif

struct BenchConfig {
  bool serve_mode = false;
  int port = 7411;  // --serve default; --bench always binds ephemeral
  uint64_t queries = 1'000'000;
  double zipf = 1.1;
  uint64_t seed = 42;
  int shards = 0;       // 0 = env/default resolution
  int queue_depth = 0;  // 0 = env/default resolution
  bool execute = false;
  ServeSizeModel size_model = ServeSizeModel::kSketch;
  std::string out_path = "BENCH_serve_net.json";
};

/// Same class pool as bench/taujoin_serve.cc: one class per (shape, n)
/// point, small enough that every optimizer tier gets exercised.
std::vector<QueryClassSpec> BuiltinClassPool(uint64_t seed) {
  std::vector<QueryClassSpec> pool;
  const auto add = [&](QueryShape shape, int lo, int hi) {
    for (int n = lo; n <= hi; ++n) {
      QueryClassSpec spec;
      spec.shape = shape;
      spec.relation_count = n;
      spec.rows_per_relation = 48;
      spec.join_domain = 8;
      spec.join_skew = 0.0;
      spec.seed = seed + static_cast<uint64_t>(pool.size());
      pool.push_back(spec);
    }
  };
  add(QueryShape::kChain, 4, 9);
  add(QueryShape::kStar, 4, 8);
  add(QueryShape::kCycle, 4, 7);
  add(QueryShape::kClique, 4, 6);
  return pool;
}

/// The wire form of a class, i.e. the QueryClassSpec::Parse line format.
std::string FormatClassSpec(const QueryClassSpec& spec) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%s,%d,%d,%d,%g,%llu",
                QueryShapeToString(spec.shape), spec.relation_count,
                spec.rows_per_relation, spec.join_domain, spec.join_skew,
                static_cast<unsigned long long>(spec.seed));
  return buffer;
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Blocking framed loopback client for the load generator.
class BenchClient {
 public:
  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Send(std::string_view payload) {
    std::string framed;
    AppendFrame(framed, payload);
    size_t off = 0;
    while (off < framed.size()) {
      ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool Recv(std::string* payload) {
    for (;;) {
      if (decoder_.Next(payload) == FrameDecoder::Result::kFrame) return true;
      char buf[64 * 1024];
      ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) return false;
      decoder_.Feed(buf, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

struct LoadPointResult {
  int connections = 0;
  int window = 0;
  uint64_t queries = 0;
  uint64_t errors = 0;  // non-ok responses (should be 0 under the curve)
  double wall_seconds = 0;
  double qps = 0;
  LatencySummary latency;
};

/// One load point: `connections` client threads, each pipelining up to
/// `window` outstanding queries, splitting `queries` evenly. Latency is
/// client-observed (send to response), correlated by echoed id because
/// cross-shard completion reorders responses.
LoadPointResult RunLoadPoint(int port, const std::vector<std::string>& pool,
                             int connections, int window, uint64_t queries,
                             double zipf, uint64_t seed) {
  LoadPointResult result;
  result.connections = connections;
  result.window = window;
  result.queries = queries;

  std::vector<std::vector<uint64_t>> samples(
      static_cast<size_t>(connections));
  std::vector<uint64_t> errors(static_cast<size_t>(connections), 0);
  std::vector<std::thread> threads;
  const uint64_t start = NowNanos();
  for (int c = 0; c < connections; ++c) {
    const uint64_t share =
        queries / connections + (c < static_cast<int>(queries % connections)
                                     ? 1
                                     : 0);
    threads.emplace_back([&, c, share] {
      BenchClient client;
      if (!client.Connect(port)) {
        errors[static_cast<size_t>(c)] += share;
        return;
      }
      Rng rng(seed + static_cast<uint64_t>(c) * 7919);
      std::vector<uint64_t>& lat = samples[static_cast<size_t>(c)];
      lat.reserve(share);
      // id → send time for the in-flight window.
      std::vector<uint64_t> sent_at(static_cast<size_t>(window) + 1, 0);
      uint64_t next_id = 0;
      uint64_t outstanding = 0;
      uint64_t done = 0;
      std::string response;
      while (done < share) {
        while (outstanding < static_cast<uint64_t>(window) &&
               next_id < share) {
          const std::string& cls = pool[rng.Zipf(pool.size(), zipf)];
          const uint64_t slot = next_id % sent_at.size();
          sent_at[slot] = NowNanos();
          if (!client.Send("{\"op\":\"query\",\"class\":\"" + cls +
                           "\",\"id\":" + std::to_string(next_id) + "}")) {
            errors[static_cast<size_t>(c)] += share - done;
            return;
          }
          ++next_id;
          ++outstanding;
        }
        if (!client.Recv(&response)) {
          errors[static_cast<size_t>(c)] += share - done;
          return;
        }
        --outstanding;
        ++done;
        const StatusOr<JsonValue> doc = ParseJson(response);
        if (!doc.ok() || !doc->GetBool("ok")) {
          ++errors[static_cast<size_t>(c)];
          continue;
        }
        const JsonValue* id = doc->Find("id");
        if (id == nullptr) continue;
        const uint64_t echoed =
            static_cast<uint64_t>(std::strtoull(id->number_text.c_str(),
                                                nullptr, 10));
        const uint64_t slot = echoed % sent_at.size();
        lat.push_back(NowNanos() - sent_at[slot]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds =
      static_cast<double>(NowNanos() - start) / 1e9;

  std::vector<uint64_t> all;
  all.reserve(queries);
  for (std::vector<uint64_t>& s : samples) {
    all.insert(all.end(), s.begin(), s.end());
  }
  for (const uint64_t e : errors) result.errors += e;
  result.latency = LatencySummary::FromSamples(std::move(all));
  if (result.wall_seconds > 0) {
    result.qps =
        static_cast<double>(result.latency.count) / result.wall_seconds;
  }
  return result;
}

/// Prometheus text grammar check mirrored from the metrics tests: every
/// non-comment line is `name{labels}? value` with a taujoin_-prefixed
/// identifier. Returns the line count through *lines.
bool PrometheusWellFormed(const std::string& text, int* lines) {
  *lines = 0;
  if (text.empty() || text.back() != '\n') return false;
  size_t start = 0;
  while (start < text.size()) {
    const size_t end = text.find('\n', start);
    if (end == std::string::npos) return false;
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ++*lines;
    if (line.rfind("# ", 0) == 0) continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) return false;
    std::string name = line.substr(0, space);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) {
      if (name.back() != '}') return false;
      name = name.substr(0, brace);
    }
    if (name.rfind("taujoin_", 0) != 0) return false;
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      if (!ok) return false;
    }
  }
  return true;
}

int ServeMain(const BenchConfig& config) {
  ServerOptions options;
  options.port = config.port;
  options.shard_count = config.shards;
  options.queue_depth = config.queue_depth;
  options.execute = config.execute;
  options.size_model = config.size_model;
  Server server(options);
  const Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "taujoin_server: %s\n", status.ToString().c_str());
    return 1;
  }
  InstallDrainSignalHandler(&server);
  std::printf("taujoin_server: listening on port %d (%d shards)\n",
              server.port(), server.shard_count());
  std::fflush(stdout);
  server.WaitUntilStopped();
  InstallDrainSignalHandler(nullptr);
  const ServerStats stats = server.stats();
  std::fprintf(stderr,
               "taujoin_server: drained (admitted=%llu completed=%llu)\n",
               static_cast<unsigned long long>(stats.queries_admitted),
               static_cast<unsigned long long>(stats.queries_completed));
  return stats.queries_admitted == stats.queries_completed ? 0 : 1;
}

int BenchMain(const BenchConfig& config) {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.shard_count = config.shards;
  options.queue_depth = config.queue_depth;
  options.execute = config.execute;
  options.size_model = config.size_model;
  Server server(options);
  const Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "taujoin_server: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "taujoin_server: bench on port %d, %d shards, %llu queries, "
               "build=%s\n",
               server.port(), server.shard_count(),
               static_cast<unsigned long long>(config.queries), kBuildType);

  std::vector<std::string> pool;
  for (const QueryClassSpec& spec : BuiltinClassPool(config.seed)) {
    pool.push_back(FormatClassSpec(spec));
  }

  // Warmup: touch every class once so the sustained points measure the
  // warm path (class build + cold optimize are paid here, exactly once
  // per shard-pinned class).
  {
    BenchClient warm;
    if (!warm.Connect(server.port())) {
      std::fprintf(stderr, "taujoin_server: warmup connect failed\n");
      return 1;
    }
    std::string response;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (!warm.Send("{\"op\":\"query\",\"class\":\"" + pool[i] +
                     "\",\"id\":" + std::to_string(i) + "}") ||
          !warm.Recv(&response)) {
        std::fprintf(stderr, "taujoin_server: warmup query failed\n");
        return 1;
      }
    }
  }

  // Saturation curve: concurrency rises per point; the query budget is
  // split across points so the whole curve sums to --queries.
  struct Point {
    int connections;
    int window;
  };
  const std::vector<Point> points = {{1, 1}, {2, 8}, {4, 16}, {8, 32}};
  std::vector<LoadPointResult> results;
  uint64_t remaining = config.queries;
  for (size_t i = 0; i < points.size(); ++i) {
    const uint64_t share = i + 1 < points.size()
                               ? config.queries / points.size()
                               : remaining;
    remaining -= share;
    LoadPointResult r =
        RunLoadPoint(server.port(), pool, points[i].connections,
                     points[i].window, share, config.zipf,
                     config.seed + 1000 * (i + 1));
    std::fprintf(stderr,
                 "  conns=%d window=%2d  %9llu q  %8.0f q/s  p50=%6.1fus  "
                 "p95=%6.1fus  p99=%6.1fus  errors=%llu\n",
                 r.connections, r.window,
                 static_cast<unsigned long long>(r.queries), r.qps,
                 static_cast<double>(r.latency.p50_ns) / 1e3,
                 static_cast<double>(r.latency.p95_ns) / 1e3,
                 static_cast<double>(r.latency.p99_ns) / 1e3,
                 static_cast<unsigned long long>(r.errors));
    results.push_back(std::move(r));
  }

  // Final scrapes + graceful drain over the wire.
  std::string stats_payload;
  std::string metrics_payload;
  bool drain_ok = false;
  {
    BenchClient tail;
    if (!tail.Connect(server.port())) {
      std::fprintf(stderr, "taujoin_server: tail connect failed\n");
      return 1;
    }
    if (!tail.Send("{\"op\":\"stats\"}") || !tail.Recv(&stats_payload)) {
      std::fprintf(stderr, "taujoin_server: stats scrape failed\n");
      return 1;
    }
    if (!tail.Send("{\"op\":\"metrics\"}") || !tail.Recv(&metrics_payload)) {
      std::fprintf(stderr, "taujoin_server: metrics scrape failed\n");
      return 1;
    }
    std::string drain_response;
    if (tail.Send("{\"op\":\"drain\"}") && tail.Recv(&drain_response)) {
      const StatusOr<JsonValue> doc = ParseJson(drain_response);
      drain_ok = doc.ok() && doc->GetBool("drained");
    }
  }
  server.WaitUntilStopped();

  int metrics_lines = 0;
  const bool metrics_ok = PrometheusWellFormed(metrics_payload,
                                               &metrics_lines);
  const ServerStats stats = server.stats();
  const uint64_t dropped = stats.queries_admitted - stats.queries_completed;
  std::fprintf(stderr,
               "taujoin_server: drain_ok=%d dropped=%llu admitted=%llu "
               "metrics: %d lines %s\n",
               drain_ok ? 1 : 0, static_cast<unsigned long long>(dropped),
               static_cast<unsigned long long>(stats.queries_admitted),
               metrics_lines, metrics_ok ? "well-formed" : "MALFORMED");
  if (!drain_ok || dropped != 0 || !metrics_ok) {
    std::fprintf(stderr, "taujoin_server: acceptance criteria FAILED\n");
    return 1;
  }

  const char* allow = std::getenv("TAUJOIN_ALLOW_NONRELEASE_JSON");
  const bool allow_nonrelease =
      allow != nullptr && allow[0] != '\0' && std::string(allow) != "0";
  if (!kReleaseBuild && !allow_nonrelease) {
    std::fprintf(stderr,
                 "\n*** TAUJOIN WARNING ***\n"
                 "Non-Release build: refusing to write %s (set "
                 "TAUJOIN_ALLOW_NONRELEASE_JSON=1 to override).\n",
                 config.out_path.c_str());
    MaybeReportProcessMetrics();
    return 0;
  }

  std::string json = "{\n";
  json += "  \"schema\": \"taujoin-serve-net-bench/v1\",\n";
  json += "  \"context\": {\n";
  json += std::string("    \"taujoin_build_type\": \"") + kBuildType +
          "\",\n";
  json += "    \"queries\": " + std::to_string(config.queries) + ",\n";
  json += "    \"zipf\": " + std::to_string(config.zipf) + ",\n";
  json += "    \"seed\": " + std::to_string(config.seed) + ",\n";
  json += "    \"shards\": " + std::to_string(server.shard_count()) + ",\n";
  json += "    \"queue_depth\": " +
          std::to_string(ResolveServerQueueDepth(config.queue_depth)) + ",\n";
  json += std::string("    \"cold_model\": \"") +
          ServeSizeModelToString(config.size_model) + "\",\n";
  json += std::string("    \"execute\": ") +
          (config.execute ? "true" : "false") + ",\n";
  json += "    \"classes\": " + std::to_string(pool.size()) + "\n";
  json += "  },\n";
  json += "  \"load_points\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const LoadPointResult& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"connections\": %d, \"window\": %d, "
                  "\"queries\": %llu, \"errors\": %llu, "
                  "\"wall_seconds\": %.6f, \"qps\": %.1f, \"latency\": ",
                  r.connections, r.window,
                  static_cast<unsigned long long>(r.queries),
                  static_cast<unsigned long long>(r.errors), r.wall_seconds,
                  r.qps);
    json += line;
    json += r.latency.ToJson() + "}";
    json += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"drain\": {\"drain_ok\": true, \"admitted\": " +
          std::to_string(stats.queries_admitted) +
          ", \"completed\": " + std::to_string(stats.queries_completed) +
          ", \"dropped\": 0, \"rejected_overload\": " +
          std::to_string(stats.rejected_overload) + "},\n";
  json += "  \"metrics_scrape\": {\"lines\": " +
          std::to_string(metrics_lines) + ", \"well_formed\": true},\n";
  json += "  \"server_stats\": " + stats_payload + ",\n";
  json += "  \"taujoin_metrics\": " +
          MetricsRegistry::Global().Snapshot().ToJson() + "\n";
  json += "}\n";

  std::ofstream out(config.out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "taujoin_server: cannot write %s\n",
                 config.out_path.c_str());
    return 1;
  }
  out << json;
  std::fprintf(stderr, "taujoin_server: wrote %s\n",
               config.out_path.c_str());
  MaybeReportProcessMetrics();
  return 0;
}

int Main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--bench") {
      config.serve_mode = false;
    } else if (arg == "--serve") {
      config.serve_mode = true;
    } else if (arg.rfind("--port=", 0) == 0) {
      config.port = std::atoi(value("--port=").c_str());
    } else if (arg.rfind("--queries=", 0) == 0) {
      config.queries = static_cast<uint64_t>(
          std::atoll(value("--queries=").c_str()));
    } else if (arg.rfind("--zipf=", 0) == 0) {
      config.zipf = std::atof(value("--zipf=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed =
          static_cast<uint64_t>(std::atoll(value("--seed=").c_str()));
    } else if (arg.rfind("--shards=", 0) == 0) {
      config.shards = std::atoi(value("--shards=").c_str());
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      config.queue_depth = std::atoi(value("--queue-depth=").c_str());
    } else if (arg == "--execute") {
      config.execute = true;
    } else if (arg.rfind("--cold-model=", 0) == 0) {
      StatusOr<ServeSizeModel> model =
          ParseServeSizeModel(value("--cold-model="));
      if (!model.ok()) {
        std::fprintf(stderr, "taujoin_server: %s\n",
                     model.status().ToString().c_str());
        return 1;
      }
      config.size_model = *model;
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out_path = value("--out=");
    } else {
      std::fprintf(stderr, "taujoin_server: unknown argument %s\n",
                   arg.c_str());
      return 1;
    }
  }
  if (!config.serve_mode && config.queries < 4) {
    std::fprintf(stderr, "taujoin_server: --queries must be >= 4\n");
    return 1;
  }
  return config.serve_mode ? ServeMain(config) : BenchMain(config);
}

}  // namespace
}  // namespace taujoin

int main(int argc, char** argv) { return taujoin::Main(argc, argv); }
