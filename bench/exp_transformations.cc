// Experiment F1–F6 — the paper's figures are strategy-tree rewrites used
// inside the proofs. This harness executes each rewrite on randomized
// databases and verifies the cost (in)equalities the proofs rely on:
//
//   Figures 1–2 (§2): pluck / graft produce well-formed strategies.
//   Figure 3 (Thm 1): on C1' databases, if a linear strategy's last
//     Cartesian step exists, rewrite T1 or T2 strictly reduces τ.
//   Figures 4–5 (Lemmas 2–3): merging a component into the other child of
//     the root never increases τ and reduces comp(D1)+comp(D2).
//   Figure 6 (Lemma 6): under C3, transferring a grandchild across the
//     root preserves τ-optimality among connected strategies.

#include <cstdio>

#include "common/rng.h"
#include "core/conditions.h"
#include "core/cost.h"
#include "core/properties.h"
#include "core/transform.h"
#include "enumerate/strategy_enumerator.h"
#include "optimize/exhaustive.h"
#include "report/table.h"
#include "workload/generator.h"
#include "workload/keyed_generator.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

namespace {

// Figures 1–2: structural well-formedness of pluck and graft over every
// subtree of every strategy of random databases.
void RunPluckGraft(ReportTable& table) {
  int checked = 0, valid = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed * 101 + 7);
    GeneratorOptions options;
    options.shape = static_cast<QueryShape>(seed % 4);
    options.relation_count = 5;
    options.rows_per_relation = 4;
    options.join_domain = 3;
    Database db = RandomDatabase(options, rng);
    ForEachStrategy(
        db.scheme(), db.scheme().full_mask(), StrategySpace::kLinear,
        [&](const Strategy& s) {
          for (int node : s.PostOrder()) {
            if (node == s.root()) continue;
            ++checked;
            Strategy sub = s.Subtree(node);
            Strategy plucked = Pluck(s, node);
            bool ok = plucked.IsValid() &&
                      plucked.mask() == (s.mask() & ~sub.mask());
            Strategy grafted = Graft(plucked, sub, plucked.root());
            ok = ok && grafted.IsValid() && grafted.mask() == s.mask();
            if (ok) ++valid;
          }
          return true;
        });
  }
  table.Row()
      .Cell("F1+F2 pluck/graft well-formed")
      .Cell(checked)
      .Cell(valid)
      .Cell(checked == valid ? "PASS" : "FAIL");
}

// Figure 3: Theorem 1's rewrites strictly improve a CP-using linear
// strategy on C1'-satisfying databases.
void RunTheorem1Rewrites(ReportTable& table) {
  int checked = 0, improved = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed * 211 + 3);
    KeyedGeneratorOptions options;
    options.shape = seed % 2 == 0 ? QueryShape::kChain : QueryShape::kStar;
    options.relation_count = 4;
    options.rows_per_relation = 4;
    options.join_domain = 6;
    Database db = KeyedDatabase(options, rng);
    JoinCache cache(&db);
    if (cache.Tau(db.scheme().full_mask()) == 0) continue;
    if (!CheckC1Strict(cache).satisfied) continue;
    // Every linear strategy that uses a CP must be strictly improvable by
    // some other linear strategy (Theorem 1 says it cannot be optimal).
    uint64_t linear_optimum =
        OptimizeExhaustive(cache, db.scheme().full_mask(),
                           StrategySpace::kLinear)
            ->cost;
    ForEachStrategy(db.scheme(), db.scheme().full_mask(),
                    StrategySpace::kLinear, [&](const Strategy& s) {
                      if (!UsesCartesianProducts(s, db.scheme())) return true;
                      ++checked;
                      if (TauCost(s, cache) > linear_optimum) ++improved;
                      return true;
                    });
  }
  table.Row()
      .Cell("F3 CP-using linear strategies strictly beaten (C1')")
      .Cell(checked)
      .Cell(improved)
      .Cell(checked == improved ? "PASS" : "FAIL");
}

// Figures 4–5: the Lemma 2/3 component-merging rewrite. We realize it via
// PluckAndGraftAbove: pluck the component strategy [E, R_E] of the
// unconnected child D2 and graft it above the other child D1. The claim:
// τ never increases (given C1 ∧ C2 and the substrategy shape).
void RunLemma23Rewrites(ReportTable& table) {
  int checked = 0, non_increasing = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed * 307 + 11);
    KeyedGeneratorOptions options;
    options.shape = QueryShape::kChain;
    options.relation_count = 4;
    options.rows_per_relation = 4;
    options.join_domain = 6;
    Database db = KeyedDatabase(options, rng);
    JoinCache cache(&db);
    if (cache.Tau(db.scheme().full_mask()) == 0) continue;
    if (!CheckC1(cache).satisfied || !CheckC2(cache).satisfied) continue;
    // Chain R0-R1-R2-R3: root = [D1] ⋈ [D2] with D1 = {R0} (connected),
    // D2 = {R1, R3} is NOT available on a chain; instead take D2 = {R2,
    // R3, R1}... To realize Lemma 2's shape we pick the strategy
    // (R0) ⋈ ((R1 R2) R3) and pluck/graft on unconnected D2 variants.
    // Simpler: construct root = [ {R0,R1} ] ⋈ [ {R2} ∪ {R3} ]? {R2,R3} is
    // connected on a chain. Use the strategy ((R0 R2)(R1 R3))-style
    // unconnected children instead:
    //   S = (R1 R3) ⋈ (R0 R2): left child {R1,R3} unconnected? On chain
    // R1-R2 adjacency: {R1,R3} unconnected ✓, right {R0,R2} unconnected ✓.
    Strategy left = Strategy::MakeJoin(Strategy::MakeLeaf(1),
                                       Strategy::MakeLeaf(3));
    Strategy right = Strategy::MakeJoin(Strategy::MakeLeaf(0),
                                        Strategy::MakeLeaf(2));
    Strategy s = Strategy::MakeJoin(left, right);
    // Lemma 3 shape: both children unconnected, each evaluating its
    // components individually (they are leaves). Merge component {R1} of
    // the left child into the right child above component {R2} (linked on
    // the chain).
    ++checked;
    Strategy rewritten =
        PluckAndGraftAbove(s, s.FindNode(SingletonMask(1)), SingletonMask(2));
    if (TauCost(rewritten, cache) <= TauCost(s, cache)) ++non_increasing;
  }
  table.Row()
      .Cell("F4+F5 component-merge rewrite never increases tau (C1+C2)")
      .Cell(checked)
      .Cell(non_increasing)
      .Cell(checked == non_increasing ? "PASS" : "FAIL");
}

// Figure 6: under C3, for a connected strategy S that is τ-optimal among
// connected strategies and whose root joins two non-trivial children
// [D1] ⋈ [D2] with grandchildren D1 = D'1 ∪ D''1, D2 = D'2 ∪ D''2 and
// D'1 linked to D'2, the proof shows the transfers
//   T1: pluck S_{D'1}, graft above S_{D2}
//   T2: pluck S_{D'2}, graft above S_{D1}
// satisfy τ(T1) = τ(S) = τ(T2). We check exactly that. Workload:
// identical-scheme (intersection-style) databases, which satisfy C3
// automatically (§5) and routinely have bushy-rooted connected optima.
void RunLemma6Rewrites(ReportTable& table) {
  int checked = 0, preserved = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed * 401 + 13);
    std::vector<Schema> schemes(5, Schema{"A"});
    // A multiset of sets (§5's view): draw the five relations from a pool
    // of two distinct sets, so equal intermediate results create the cost
    // ties that let connected optima be bushy at the root.
    std::vector<Relation> pool;
    for (int p = 0; p < 2; ++p) {
      Relation r{Schema{"A"}};
      for (int v = 0; v < 16; ++v) {
        if (rng.Bernoulli(0.6)) r.Insert(Tuple{v});
      }
      r.Insert(Tuple{99});  // shared element keeps the intersection non-empty
      pool.push_back(std::move(r));
    }
    std::vector<Relation> sets;
    for (int i = 0; i < 5; ++i) {
      sets.push_back(pool[static_cast<size_t>(rng.Uniform(2))]);
    }
    Database db = Database::CreateOrDie(DatabaseScheme(schemes), sets);
    JoinCache cache(&db);
    if (!CheckC3(cache).satisfied) continue;
    uint64_t connected_optimum =
        OptimizeExhaustive(cache, db.scheme().full_mask(),
                           StrategySpace::kNoCartesian)
            ->cost;
    ForEachStrategy(
        db.scheme(), db.scheme().full_mask(), StrategySpace::kNoCartesian,
        [&](const Strategy& s) {
          if (TauCost(s, cache) != connected_optimum) return true;
          const Strategy::Node& root = s.node(s.root());
          if (s.IsLeaf(root.left) || s.IsLeaf(root.right)) return true;
          const Strategy::Node& d1 = s.node(root.left);
          const Strategy::Node& d2 = s.node(root.right);
          for (int g1 : {d1.left, d1.right}) {
            for (int g2 : {d2.left, d2.right}) {
              if (!db.scheme().Linked(s.node(g1).mask, s.node(g2).mask)) {
                continue;
              }
              Strategy t1 = PluckAndGraftAbove(s, g1, d2.mask);
              Strategy t2 = PluckAndGraftAbove(s, g2, d1.mask);
              checked += 2;
              if (TauCost(t1, cache) == connected_optimum) ++preserved;
              if (TauCost(t2, cache) == connected_optimum) ++preserved;
            }
          }
          return true;
        });
  }
  table.Row()
      .Cell("F6 root transfers T1/T2 preserve connected-optimality (C3)")
      .Cell(checked)
      .Cell(preserved)
      .Cell(checked == preserved ? "PASS" : "FAIL");
}

}  // namespace

int main() {
  PrintSection("F1-F6: the paper's figure rewrites, executed and checked");
  ReportTable table({"rewrite property", "instances", "holding", "verdict"});
  RunPluckGraft(table);
  RunTheorem1Rewrites(table);
  RunLemma23Rewrites(table);
  RunLemma6Rewrites(table);
  table.Print();
  std::printf(
      "\nEach row replays one of the paper's proof transformations\n"
      "(Figures 1-6) on randomized condition-satisfying databases and\n"
      "verifies the cost identity the proof depends on.\n");
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
