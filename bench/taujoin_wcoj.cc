// Worst-case-optimal-tier benchmark: attribute-order Generic Join vs. the
// tier ladder's best binary strategy, head to head on growing cycle and
// clique families, writing BENCH_wcoj.json (schema taujoin-wcoj-bench/v1)
// with both paths' latency split and intermediate-tuple counts — the
// quantitative AGM-gap claim of the ROADMAP.
//
// Per (family, n) point, over the same random database:
//  * binary path: cold exact tier ladder (OptimizeAdaptive with the
//    acyclic tier disabled — greedy/IKKBZ floor, exhaustive n ≤ 7, DPccp
//    above) + ExecuteStrategy of the winning plan; intermediates = the sum
//    of every non-final step's output, the τ the paper's strategies pay;
//  * wcoj path: GenericJoinExecute (trie/rank build + leapfrog search);
//    intermediates = partial_tuples, the successful bindings at non-final
//    attribute levels — the attribute-order analogue of a step output.
// Both paths must produce identical output cardinality (checked here; the
// differential test pins full set equality). The acceptance bar — Generic
// Join's intermediates strictly below τ(best binary strategy) on cycles at
// n ≥ 6 — is enforced by tools/check_bench_metrics.py over the artifact.
//
// The artifact carries the usual Release gate: a non-NDEBUG build refuses
// to write JSON unless TAUJOIN_ALLOW_NONRELEASE_JSON=1.
//
// Usage:
//   taujoin_wcoj [--rows=1024] [--seed=42] [--skew=0.4]
//                [--out=BENCH_wcoj.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/cost.h"
#include "core/trace.h"
#include "optimize/adaptive.h"
#include "relational/morsel.h"
#include "wcoj/generic_join.h"
#include "workload/generator.h"

namespace taujoin {
namespace {

#ifdef NDEBUG
constexpr bool kReleaseBuild = true;
constexpr const char* kBuildType = "release";
#else
constexpr bool kReleaseBuild = false;
constexpr const char* kBuildType = "debug";
#endif

struct BenchConfig {
  int rows = 1024;
  uint64_t seed = 42;
  double skew = 0.4;
  std::string out_path = "BENCH_wcoj.json";
};

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct RunRecord {
  std::string family;
  int n = 0;
  int rows = 0;
  int domain = 0;
  // Binary path: cold exact ladder + strategy execution.
  std::string binary_tier;
  uint64_t binary_plan_ns = 0;
  uint64_t binary_exec_ns = 0;
  uint64_t binary_total_ns = 0;
  uint64_t binary_intermediate_rows = 0;
  // WCOJ path: trie/rank index build + attribute-order search.
  uint64_t wcoj_build_ns = 0;
  uint64_t wcoj_search_ns = 0;
  uint64_t wcoj_total_ns = 0;
  uint64_t wcoj_partial_tuples = 0;
  uint64_t wcoj_seeks = 0;
  uint64_t output_rows = 0;
  /// binary_total / wcoj_total, fixed-point ×1000.
  uint64_t speedup_x1000 = 0;
  /// binary_intermediate_rows / max(wcoj_partial_tuples, 1), ×1000 — the
  /// AGM gap the checker's growth bar reads.
  uint64_t intermediate_ratio_x1000 = 0;
};

RunRecord RunOne(QueryShape family, int n, const BenchConfig& config) {
  RunRecord rec;
  rec.family = QueryShapeToString(family);
  rec.n = n;
  rec.rows = config.rows;
  rec.domain = config.rows;  // growth ≈ 1 per edge; skew supplies the gap

  GeneratorOptions gen;
  gen.shape = family;
  gen.relation_count = n;
  gen.rows_per_relation = config.rows;
  gen.join_domain = rec.domain;
  gen.join_skew = config.skew;
  Rng rng(config.seed + static_cast<uint64_t>(n));
  const Database db = RandomDatabase(gen, rng);
  const RelMask mask = db.scheme().full_mask();

  // Binary path: the serving tier's exact ladder with the structural
  // tiers switched off — what every one of these queries paid before.
  {
    const uint64_t plan_start = NowNanos();
    CostEngine engine(&db);
    AdaptiveOptions options;
    options.enable_acyclic = false;
    const AdaptiveResult result = OptimizeAdaptive(engine, mask, options);
    rec.binary_plan_ns = NowNanos() - plan_start;
    rec.binary_tier = OptimizerTierToString(result.tier);

    const uint64_t exec_start = NowNanos();
    const EvaluationTrace trace = ExecuteStrategy(db, result.plan.strategy);
    rec.binary_exec_ns = NowNanos() - exec_start;
    rec.binary_total_ns = rec.binary_plan_ns + rec.binary_exec_ns;
    for (size_t s = 0; s + 1 < trace.steps.size(); ++s) {
      rec.binary_intermediate_rows += trace.steps[s].output_size;
    }
    rec.output_rows = trace.result.size();
  }

  // WCOJ path: one GenericJoinExecute call; the result splits its own
  // time into index build vs. search.
  {
    const WcojResult wr = GenericJoinExecute(db, mask);
    rec.wcoj_build_ns = wr.build_ns;
    rec.wcoj_search_ns = wr.search_ns;
    rec.wcoj_total_ns = wr.build_ns + wr.search_ns;
    rec.wcoj_partial_tuples = wr.partial_tuples;
    rec.wcoj_seeks = wr.seeks;
    if (wr.result.size() != rec.output_rows) {
      std::fprintf(stderr,
                   "taujoin_wcoj: %s/n%d output mismatch (%zu vs %llu)\n",
                   rec.family.c_str(), n, wr.result.size(),
                   static_cast<unsigned long long>(rec.output_rows));
      std::exit(1);
    }
  }
  rec.speedup_x1000 = rec.wcoj_total_ns > 0
                          ? rec.binary_total_ns * 1000 / rec.wcoj_total_ns
                          : 0;
  rec.intermediate_ratio_x1000 =
      rec.binary_intermediate_rows * 1000 /
      std::max<uint64_t>(rec.wcoj_partial_tuples, 1);
  return rec;
}

int Main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--rows=", 0) == 0) {
      config.rows = std::atoi(value("--rows=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = static_cast<uint64_t>(std::atoll(value("--seed=").c_str()));
    } else if (arg.rfind("--skew=", 0) == 0) {
      config.skew = std::atof(value("--skew=").c_str());
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out_path = value("--out=");
    } else {
      std::fprintf(stderr, "taujoin_wcoj: unknown argument %s\n", arg.c_str());
      return 1;
    }
  }
  if (config.rows <= 0) {
    std::fprintf(stderr, "taujoin_wcoj: --rows must be positive\n");
    return 1;
  }

  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::fprintf(stderr, "taujoin_wcoj: rows=%d build=%s threads=%d hw=%d\n",
               config.rows, kBuildType, ResolveThreads(0), hw);

  struct FamilyPlan {
    QueryShape shape;
    std::vector<int> sizes;
  };
  // Cliques stay small: arity grows with n (n−1 join attributes + 1
  // private per relation), so n = 5 already means depth-5 tries.
  const std::vector<FamilyPlan> families{
      {QueryShape::kCycle, {3, 4, 5, 6, 7, 8}},
      {QueryShape::kClique, {3, 4, 5}},
  };
  std::vector<RunRecord> runs;
  for (const FamilyPlan& family : families) {
    for (const int n : family.sizes) {
      RunRecord rec = RunOne(family.shape, n, config);
      std::fprintf(
          stderr,
          "%-7s n=%-2d binary %8.2fms (plan %8.2f, tier %-10s) "
          "wcoj %8.2fms (build %6.2f) speedup %6.1fx "
          "intermediates %llu vs %llu (ratio %.1fx), out %llu\n",
          rec.family.c_str(), rec.n,
          static_cast<double>(rec.binary_total_ns) / 1e6,
          static_cast<double>(rec.binary_plan_ns) / 1e6,
          rec.binary_tier.c_str(),
          static_cast<double>(rec.wcoj_total_ns) / 1e6,
          static_cast<double>(rec.wcoj_build_ns) / 1e6,
          static_cast<double>(rec.speedup_x1000) / 1e3,
          static_cast<unsigned long long>(rec.binary_intermediate_rows),
          static_cast<unsigned long long>(rec.wcoj_partial_tuples),
          static_cast<double>(rec.intermediate_ratio_x1000) / 1e3,
          static_cast<unsigned long long>(rec.output_rows));
      runs.push_back(std::move(rec));
    }
  }

  const char* allow = std::getenv("TAUJOIN_ALLOW_NONRELEASE_JSON");
  const bool allow_nonrelease =
      allow != nullptr && allow[0] != '\0' && std::string(allow) != "0";
  if (!kReleaseBuild && !allow_nonrelease) {
    std::fprintf(stderr,
                 "\n*** TAUJOIN WARNING ***\n"
                 "Non-Release build: refusing to write %s (set "
                 "TAUJOIN_ALLOW_NONRELEASE_JSON=1 to override).\n",
                 config.out_path.c_str());
    MaybeReportProcessMetrics();
    return 0;
  }

  std::string json = "{\n";
  json += "  \"schema\": \"taujoin-wcoj-bench/v1\",\n";
  json += "  \"context\": {\n";
  json += std::string("    \"taujoin_build_type\": \"") + kBuildType + "\",\n";
  json += "    \"rows\": " + std::to_string(config.rows) + ",\n";
  json += "    \"seed\": " + std::to_string(config.seed) + ",\n";
  json += "    \"skew\": " + std::to_string(config.skew) + ",\n";
  json += "    \"threads\": " + std::to_string(ResolveThreads(0)) + ",\n";
  json += "    \"morsel_rows\": " + std::to_string(ResolveMorselRows(0)) +
          ",\n";
  json += "    \"hardware_concurrency\": " + std::to_string(hw) + "\n";
  json += "  },\n";
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    json += "    {\"family\": \"" + r.family + "\"";
    json += ", \"n\": " + std::to_string(r.n);
    json += ", \"rows\": " + std::to_string(r.rows);
    json += ", \"domain\": " + std::to_string(r.domain);
    json += ", \"binary_tier\": \"" + r.binary_tier + "\"";
    json += ", \"binary_plan_ns\": " + std::to_string(r.binary_plan_ns);
    json += ", \"binary_exec_ns\": " + std::to_string(r.binary_exec_ns);
    json += ", \"binary_total_ns\": " + std::to_string(r.binary_total_ns);
    json += ", \"binary_intermediate_rows\": " +
            std::to_string(r.binary_intermediate_rows);
    json += ", \"wcoj_build_ns\": " + std::to_string(r.wcoj_build_ns);
    json += ", \"wcoj_search_ns\": " + std::to_string(r.wcoj_search_ns);
    json += ", \"wcoj_total_ns\": " + std::to_string(r.wcoj_total_ns);
    json += ", \"wcoj_partial_tuples\": " +
            std::to_string(r.wcoj_partial_tuples);
    json += ", \"wcoj_seeks\": " + std::to_string(r.wcoj_seeks);
    json += ", \"output_rows\": " + std::to_string(r.output_rows);
    json += ", \"speedup_x1000\": " + std::to_string(r.speedup_x1000);
    json += ", \"intermediate_ratio_x1000\": " +
            std::to_string(r.intermediate_ratio_x1000);
    json += "}";
    json += (i + 1 < runs.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"taujoin_metrics\": " +
          MetricsRegistry::Global().Snapshot().ToJson() + "\n";
  json += "}\n";

  std::ofstream out(config.out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "taujoin_wcoj: cannot write %s\n",
                 config.out_path.c_str());
    return 1;
  }
  out << json;
  std::fprintf(stderr, "taujoin_wcoj: wrote %s\n", config.out_path.c_str());
  MaybeReportProcessMetrics();
  return 0;
}

}  // namespace
}  // namespace taujoin

int main(int argc, char** argv) { return taujoin::Main(argc, argv); }
