// Shared main() plumbing for the microbenchmark binaries: build-type
// provenance stamping and the Release gate for JSON artifacts.
//
// Background: the checked-in BENCH_*.json artifacts were once recorded
// from a Debug build (the google-benchmark context advertises the
// *library's* build type, not ours, so nothing flagged it). To keep that
// from happening again, every artifact now carries an explicit
// `taujoin_build_type` context entry, and a non-Release binary refuses
// to write the default JSON artifact at all (stderr timings are still
// printed for quick local iteration). Set TAUJOIN_ALLOW_NONRELEASE_JSON=1
// to override the gate when a debug-mode artifact is genuinely wanted.

#ifndef TAUJOIN_BENCH_BENCH_MAIN_H_
#define TAUJOIN_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace taujoin {
namespace bench {

#ifdef NDEBUG
inline constexpr bool kReleaseBuild = true;
inline constexpr const char* kBuildType = "release";
#else
inline constexpr bool kReleaseBuild = false;
inline constexpr const char* kBuildType = "debug";
#endif

/// Splices the process-wide metrics snapshot into an already-written
/// benchmark JSON artifact as a top-level `taujoin_metrics` object, so
/// every BENCH_*.json records the memo hit rate, pool steal counts and
/// phase timings of the run that produced it. The google-benchmark JSON
/// reporter writes its context before benchmarks run, which is too early
/// for run metrics — hence the post-run splice before the final `}`.
inline void EmbedMetricsSnapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;  // artifact intentionally not written (non-Release gate)
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string content = buffer.str();
  const size_t brace = content.find_last_of('}');
  if (brace == std::string::npos) {
    std::fprintf(stderr, "taujoin: %s is not a JSON object; metrics snapshot "
                 "not embedded\n", path.c_str());
    return;
  }
  const std::string snapshot =
      ",\n  \"taujoin_metrics\": " + MetricsRegistry::Global().Snapshot().ToJson() +
      "\n";
  content.insert(brace, snapshot);
  std::ofstream out(path, std::ios::trunc);
  out << content;
}

/// Runs all registered benchmarks with shared provenance handling:
///  * stamps `taujoin_build_type` into the benchmark context (and thus
///    into every JSON artifact);
///  * appends `--benchmark_out=<default_out>` (JSON) unless the caller
///    passed an explicit --benchmark_out;
///  * in a non-Release build, refuses to write the default artifact and
///    prints a loud warning instead of silently recording debug numbers;
///  * embeds the MetricsRegistry snapshot into whichever JSON artifact
///    the run produced (see EmbedMetricsSnapshot).
inline int RunBenchmarks(int argc, char** argv, const char* default_out) {
  benchmark::AddCustomContext("taujoin_build_type", kBuildType);

  bool has_out = false;
  std::string artifact_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
      artifact_path = arg.substr(std::string("--benchmark_out=").size());
    }
  }

  const char* allow = std::getenv("TAUJOIN_ALLOW_NONRELEASE_JSON");
  const bool allow_nonrelease = allow != nullptr && allow[0] != '\0' &&
                                std::string(allow) != "0";

  std::vector<char*> args(argv, argv + argc);
  std::string out = std::string("--benchmark_out=") + default_out;
  std::string format = "--benchmark_out_format=json";
  if (!has_out) {
    if (kReleaseBuild || allow_nonrelease) {
      args.push_back(out.data());
      args.push_back(format.data());
      artifact_path = default_out;
    } else {
      std::fprintf(stderr,
                   "\n*** TAUJOIN WARNING ***\n"
                   "This benchmark binary was built without NDEBUG (a "
                   "non-Release build).\nRefusing to write %s: debug-mode "
                   "numbers must not masquerade as artifacts.\nRebuild with "
                   "-DCMAKE_BUILD_TYPE=Release, or set "
                   "TAUJOIN_ALLOW_NONRELEASE_JSON=1 to override.\n\n",
                   default_out);
    }
  } else if (!kReleaseBuild && !allow_nonrelease) {
    std::fprintf(stderr,
                 "\n*** TAUJOIN WARNING ***\n"
                 "Writing a benchmark artifact from a non-Release build; it "
                 "will carry\n\"taujoin_build_type\": \"debug\" in its "
                 "context. Do not check it in.\n\n");
  }

  int arg_count = static_cast<int>(args.size());
  benchmark::Initialize(&arg_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(arg_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!artifact_path.empty()) EmbedMetricsSnapshot(artifact_path);
  MaybeReportProcessMetrics();
  return 0;
}

}  // namespace bench
}  // namespace taujoin

#endif  // TAUJOIN_BENCH_BENCH_MAIN_H_
