// Workload-serving benchmark: drives a Zipf-skewed stream of shaped join
// queries through the WorkloadDriver, cold (no plan cache) vs. warm
// (shared PlanCache), at 1 / 2 / hardware thread counts, and writes
// BENCH_serve.json (schema taujoin-serve-bench/v1) with per-run latency
// summaries plus the process metrics snapshot.
//
// The artifact carries the same Release gate as the google-benchmark
// binaries (see bench_main.h): a non-NDEBUG build refuses to write JSON
// unless TAUJOIN_ALLOW_NONRELEASE_JSON=1, so debug numbers cannot
// masquerade as checked-in artifacts.
//
// Usage:
//   taujoin_serve [--queries=1000] [--zipf=1.1] [--seed=42]
//                 [--workload=stream.txt] [--out=BENCH_serve.json]
//                 [--execute] [--cold-model=sketch]
//
// --cold-model selects the size oracle cache misses plan under
// (exact | independence | sketch | simpli2; default sketch — the
// estimate-driven cold path that never touches the data while planning).
//
// Without --workload the built-in class pool is used: a chain/star/cycle/
// clique mix (n = 4..9) whose repeat frequencies follow a Zipf law —
// exactly what tools/gen_workload.py emits, kept in sync by
// tests and tools/check_bench_metrics.py.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "serve/plan_cache.h"
#include "serve/workload_driver.h"

namespace taujoin {
namespace {

#ifdef NDEBUG
constexpr bool kReleaseBuild = true;
constexpr const char* kBuildType = "release";
#else
constexpr bool kReleaseBuild = false;
constexpr const char* kBuildType = "debug";
#endif

struct BenchConfig {
  int queries = 1000;
  double zipf = 1.1;
  uint64_t seed = 42;
  std::string workload_path;
  std::string out_path = "BENCH_serve.json";
  bool execute = false;
  ServeSizeModel size_model = ServeSizeModel::kSketch;
};

/// The built-in class pool: one class per (shape, n) point, sizes kept
/// small enough that the exhaustive/DPccp tiers are all exercised.
std::vector<QueryClassSpec> BuiltinClassPool(uint64_t seed) {
  std::vector<QueryClassSpec> pool;
  const auto add = [&](QueryShape shape, int lo, int hi) {
    for (int n = lo; n <= hi; ++n) {
      QueryClassSpec spec;
      spec.shape = shape;
      spec.relation_count = n;
      spec.rows_per_relation = 48;
      spec.join_domain = 8;
      spec.join_skew = 0.0;
      spec.seed = seed + static_cast<uint64_t>(pool.size());
      pool.push_back(spec);
    }
  };
  add(QueryShape::kChain, 4, 9);
  add(QueryShape::kStar, 4, 8);
  add(QueryShape::kCycle, 4, 7);
  add(QueryShape::kClique, 4, 6);
  return pool;
}

/// Zipf-skewed query stream over a class pool: class ranks are a random
/// permutation of the pool (so popularity is uncorrelated with size) and
/// each query draws its rank from Zipf(pool, s).
std::vector<QueryClassSpec> SkewedStream(std::vector<QueryClassSpec> pool,
                                         int queries, double zipf,
                                         uint64_t seed) {
  Rng rng(seed);
  rng.Shuffle(pool);
  std::vector<QueryClassSpec> stream;
  stream.reserve(static_cast<size_t>(queries));
  for (int q = 0; q < queries; ++q) {
    stream.push_back(pool[rng.Zipf(pool.size(), zipf)]);
  }
  return stream;
}

struct RunResult {
  int threads = 0;
  bool cached = false;
  WorkloadReport report;
};

RunResult RunOnce(const std::vector<QueryClassSpec>& stream, int threads,
                  bool cached, bool execute, ServeSizeModel size_model) {
  RunResult result;
  result.threads = threads;
  result.cached = cached;

  ThreadPool pool(threads - 1);
  PlanCache cache;
  WorkloadDriverOptions options;
  options.cache = cached ? &cache : nullptr;
  options.execute = execute;
  options.size_model = size_model;
  options.parallel.threads = threads;
  options.parallel.pool = &pool;
  WorkloadDriver driver(options);
  result.report = driver.Run(stream);
  return result;
}

int Main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--queries=", 0) == 0) {
      config.queries = std::atoi(value("--queries=").c_str());
    } else if (arg.rfind("--zipf=", 0) == 0) {
      config.zipf = std::atof(value("--zipf=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = static_cast<uint64_t>(
          std::atoll(value("--seed=").c_str()));
    } else if (arg.rfind("--workload=", 0) == 0) {
      config.workload_path = value("--workload=");
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out_path = value("--out=");
    } else if (arg == "--execute") {
      config.execute = true;
    } else if (arg.rfind("--cold-model=", 0) == 0) {
      StatusOr<ServeSizeModel> model =
          ParseServeSizeModel(value("--cold-model="));
      if (!model.ok()) {
        std::fprintf(stderr, "taujoin_serve: %s\n",
                     model.status().ToString().c_str());
        return 1;
      }
      config.size_model = *model;
    } else {
      std::fprintf(stderr, "taujoin_serve: unknown argument %s\n",
                   arg.c_str());
      return 1;
    }
  }
  if (config.queries <= 0) {
    std::fprintf(stderr, "taujoin_serve: --queries must be positive\n");
    return 1;
  }

  std::vector<QueryClassSpec> pool;
  if (!config.workload_path.empty()) {
    std::ifstream in(config.workload_path);
    if (!in) {
      std::fprintf(stderr, "taujoin_serve: cannot open %s\n",
                   config.workload_path.c_str());
      return 1;
    }
    StatusOr<std::vector<QueryClassSpec>> loaded = LoadWorkload(in);
    if (!loaded.ok()) {
      std::fprintf(stderr, "taujoin_serve: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    pool = std::move(*loaded);
    if (pool.empty()) {
      std::fprintf(stderr, "taujoin_serve: workload file is empty\n");
      return 1;
    }
  } else {
    pool = BuiltinClassPool(config.seed);
  }

  // A --workload file IS the stream, verbatim (gen_workload.py already
  // applied the skew); only the built-in pool gets Zipf repeats here.
  std::vector<QueryClassSpec> stream;
  if (!config.workload_path.empty()) {
    stream = std::move(pool);
  } else {
    stream = SkewedStream(std::move(pool), config.queries, config.zipf,
                          config.seed);
  }

  const int hw = std::max(1, static_cast<int>(
                                 std::thread::hardware_concurrency()));
  std::vector<int> thread_counts{1};
  if (hw >= 2) thread_counts.push_back(2);
  if (hw > 2) thread_counts.push_back(hw);

  std::fprintf(stderr, "taujoin_serve: %zu queries, build=%s, threads:",
               stream.size(), kBuildType);
  for (const int t : thread_counts) std::fprintf(stderr, " %d", t);
  std::fprintf(stderr, "\n");

  std::vector<RunResult> runs;
  for (const int threads : thread_counts) {
    for (const bool cached : {false, true}) {
      RunResult run =
          RunOnce(stream, threads, cached, config.execute, config.size_model);
      std::fprintf(stderr, "--- threads=%d cache=%s ---\n%s", threads,
                   cached ? "on" : "off", run.report.ToString().c_str());
      runs.push_back(std::move(run));
    }
  }

  // Exact-model contrast at 1 thread: shows what the estimate-driven cold
  // path saves in plan time, and (because exact costing drives the
  // counting kernels) keeps engine signal in the artifact for the metrics
  // checker even when the configured cold model never touches the data.
  if (config.size_model != ServeSizeModel::kExact) {
    RunResult exact = RunOnce(stream, /*threads=*/1, /*cached=*/true,
                              config.execute, ServeSizeModel::kExact);
    const LatencySummary& est_cold = runs.front().report.optimize_cold;
    const LatencySummary& exact_cold = exact.report.optimize_cold;
    if (est_cold.count > 0 && exact_cold.count > 0 && est_cold.p50_ns > 0) {
      std::fprintf(stderr,
                   "cold plan p50: %s %.1fus vs exact %.1fus: %.1fx\n",
                   ServeSizeModelToString(config.size_model),
                   static_cast<double>(est_cold.p50_ns) / 1e3,
                   static_cast<double>(exact_cold.p50_ns) / 1e3,
                   static_cast<double>(exact_cold.p50_ns) /
                       static_cast<double>(est_cold.p50_ns));
    }
    runs.push_back(std::move(exact));
  }

  // Headline: warm-vs-cold p50 optimize latency at 1 thread (the cached
  // run's own hit population vs. its miss population — the ≥10x
  // acceptance criterion of the serving layer).
  for (const RunResult& run : runs) {
    if (!run.cached) continue;
    const LatencySummary& warm = run.report.optimize_warm;
    const LatencySummary& cold = run.report.optimize_cold;
    if (warm.count == 0 || cold.count == 0 || warm.p50_ns == 0) continue;
    std::fprintf(stderr,
                 "threads=%d warm p50 %.1fus vs cold p50 %.1fus: %.1fx\n",
                 run.threads, static_cast<double>(warm.p50_ns) / 1e3,
                 static_cast<double>(cold.p50_ns) / 1e3,
                 static_cast<double>(cold.p50_ns) /
                     static_cast<double>(warm.p50_ns));
  }

  const char* allow = std::getenv("TAUJOIN_ALLOW_NONRELEASE_JSON");
  const bool allow_nonrelease =
      allow != nullptr && allow[0] != '\0' && std::string(allow) != "0";
  if (!kReleaseBuild && !allow_nonrelease) {
    std::fprintf(stderr,
                 "\n*** TAUJOIN WARNING ***\n"
                 "Non-Release build: refusing to write %s (set "
                 "TAUJOIN_ALLOW_NONRELEASE_JSON=1 to override).\n",
                 config.out_path.c_str());
    MaybeReportProcessMetrics();
    return 0;
  }

  std::string json = "{\n";
  json += "  \"schema\": \"taujoin-serve-bench/v1\",\n";
  json += "  \"context\": {\n";
  json += std::string("    \"taujoin_build_type\": \"") + kBuildType +
          "\",\n";
  json += "    \"queries\": " + std::to_string(stream.size()) + ",\n";
  json += "    \"zipf\": " + std::to_string(config.zipf) + ",\n";
  json += "    \"seed\": " + std::to_string(config.seed) + ",\n";
  json += std::string("    \"cold_model\": \"") +
          ServeSizeModelToString(config.size_model) + "\",\n";
  json += std::string("    \"execute\": ") +
          (config.execute ? "true" : "false") + "\n";
  json += "  },\n";
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& run = runs[i];
    json += "    {\"threads\": " + std::to_string(run.threads) +
            ", \"cache\": " + (run.cached ? "\"on\"" : "\"off\"") +
            ", \"report\": " + run.report.ToJson() + "}";
    json += (i + 1 < runs.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"taujoin_metrics\": " +
          MetricsRegistry::Global().Snapshot().ToJson() + "\n";
  json += "}\n";

  std::ofstream out(config.out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "taujoin_serve: cannot write %s\n",
                 config.out_path.c_str());
    return 1;
  }
  out << json;
  std::fprintf(stderr, "taujoin_serve: wrote %s\n", config.out_path.c_str());
  MaybeReportProcessMetrics();
  return 0;
}

}  // namespace
}  // namespace taujoin

int main(int argc, char** argv) { return taujoin::Main(argc, argv); }
