// Experiment E5 — Example 5 (§4): necessity of C3 in Theorem 3. With only
// C1 and C2 the unique τ-optimum strategy can be non-linear.

#include <cstdio>

#include "core/conditions.h"
#include "core/cost.h"
#include "core/properties.h"
#include "core/strategy_parser.h"
#include "enumerate/counting.h"
#include "optimize/exhaustive.h"
#include "report/table.h"
#include "workload/paper_data.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  Database db = Example5Database();
  JoinCache cache(&db);

  std::printf(
      "Database: majors (MS), enrollments (SC), instructors (CI),\n"
      "departments (ID). Query: \"How is each department serving the needs\n"
      "of various majors?\" (SC column reconstructed — see DESIGN.md.)\n");

  PrintSection("E5: every strategy cost (15 strategies over 4 relations)");
  {
    ReportTable t({"strategy", "tau", "linear", "uses CP"});
    ForEachStrategy(db.scheme(), db.scheme().full_mask(), StrategySpace::kAll,
                    [&](const Strategy& s) {
                      t.Row()
                          .Cell(s.ToString(db))
                          .Cell(TauCost(s, cache))
                          .Cell(IsLinear(s) ? "yes" : "no")
                          .Cell(UsesCartesianProducts(s, db.scheme()) ? "yes"
                                                                      : "no");
                      return true;
                    });
    t.Print();
  }

  PrintSection("E5: claims");
  {
    std::vector<Strategy> optima =
        AllOptima(cache, db.scheme().full_mask(), StrategySpace::kAll);
    Strategy expected = ParseStrategyOrDie(db, "((MS SC) (CI ID))");
    auto linear_nocp = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                          StrategySpace::kLinearNoCartesian);
    ReportTable t({"claim", "paper", "measured"});
    t.Row().Cell("unique tau-optimum").Cell("yes").Cell(
        optima.size() == 1 ? "yes" : "no");
    t.Row()
        .Cell("optimum is (MS join SC) join (CI join ID)")
        .Cell("yes")
        .Cell(!optima.empty() && optima[0].EquivalentTo(expected) ? "yes"
                                                                  : "no");
    t.Row().Cell("optimum is linear").Cell("no").Cell(
        !optima.empty() && IsLinear(optima[0]) ? "yes" : "no");
    t.Row()
        .Cell("optimum uses Cartesian products")
        .Cell("no")
        .Cell(!optima.empty() && UsesCartesianProducts(optima[0], db.scheme())
                  ? "yes"
                  : "no");
    t.Row().Cell("tau(CI join ID) > tau(ID)").Cell("yes").Cell(
        cache.Tau(0b1100) > cache.Tau(0b1000) ? "yes" : "no");
    t.Row().Cell("satisfies C1").Cell("yes").Cell(
        CheckC1(cache).satisfied ? "yes" : "no");
    t.Row().Cell("satisfies C2").Cell("yes").Cell(
        CheckC2(cache).satisfied ? "yes" : "no");
    t.Row().Cell("satisfies C3").Cell("no").Cell(
        CheckC3(cache).satisfied ? "yes" : "no");
    t.Print();
    std::printf(
        "\nBest linear no-CP strategy costs %llu vs optimum %llu.\n"
        "Conclusion (paper): a System-R-style optimizer (linear, no CP)\n"
        "misses the tau-optimum when C3 fails — C3 is necessary in\n"
        "Theorem 3 and cannot be relaxed even to C1 AND C2.\n",
        static_cast<unsigned long long>(linear_nocp->cost),
        static_cast<unsigned long long>(TauCost(optima[0], cache)));
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
