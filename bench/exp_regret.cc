// Experiment I7 — planning regret of estimate-driven optimization. Each
// size model (exact τ, independence, sketch+histogram, Simpli-Squared)
// drives the same bushy DP over the same strategy space; the chosen plans
// are then scored with *exact* τ. Regret = true τ of the model's plan /
// true τ of the optimal plan (≥ 1 by construction, = 1 for the exact
// model). This is the experiment behind the statistics subsystem: how much
// plan quality does never-touch-the-data planning actually give up, per
// query family, and does the sketch model close the gap the paper blames
// on uniformity + independence?

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/cost.h"
#include "optimize/dp.h"
#include "optimize/size_model.h"
#include "report/stats.h"
#include "report/table.h"
#include "workload/generator.h"

using namespace taujoin;  // NOLINT

namespace {

struct ModelRun {
  std::string name;
  SampleStats regret;  ///< true τ of model plan / optimal true τ
  int plans_differ = 0;
};

}  // namespace

int main() {
  const int kTrials = 16;
  const QueryShape kShapes[] = {QueryShape::kChain, QueryShape::kStar,
                                QueryShape::kCycle, QueryShape::kClique};

  PrintSection(
      "I7: regret of estimate-driven plans (true tau vs optimal), by family");
  ReportTable t({"family", "model", "trials", "median regret", "p90 regret",
                 "max regret", "plans differ (%)"});
  for (const QueryShape shape : kShapes) {
    std::vector<ModelRun> runs;
    for (const char* name : {"exact", "independence", "sketch", "simpli2"}) {
      runs.push_back({name, SampleStats{}, 0});
    }
    int sampled = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 5167 +
              static_cast<uint64_t>(shape) * 29 + 3);
      GeneratorOptions options;
      options.shape = shape;
      options.relation_count = 6;
      options.rows_per_relation = 24;
      options.join_domain = 6;
      options.join_skew = 1.0;
      Database db = RandomDatabase(options, rng);
      CostEngine engine(&db);
      const DatabaseStats stats = BuildDatabaseStats(db);

      ExactSizeModel exact(&engine);
      IndependenceSizeModel independence(&db);
      SketchSizeModel sketch(&stats);
      SimpliSquaredModel simpli = SimpliSquaredModel::FromStats(stats);
      SizeModel* models[] = {&exact, &independence, &sketch, &simpli};

      const RelMask mask = db.scheme().full_mask();
      const DpOptions space(SearchSpace::kBushy, /*allow_cartesian=*/true);
      auto optimal = OptimizeDp(db.scheme(), mask, exact, space);
      if (!optimal || optimal->cost == 0) continue;
      ++sampled;
      for (size_t m = 0; m < runs.size(); ++m) {
        auto plan = OptimizeDp(db.scheme(), mask, *models[m], space);
        if (!plan) continue;
        const uint64_t true_tau = TauCost(plan->strategy, engine);
        runs[m].regret.Add(static_cast<double>(true_tau) /
                           static_cast<double>(optimal->cost));
        if (!plan->strategy.EquivalentTo(optimal->strategy)) {
          ++runs[m].plans_differ;
        }
      }
    }
    for (const ModelRun& run : runs) {
      t.Row()
          .Cell(std::string(QueryShapeToString(shape)))
          .Cell(run.name)
          .Cell(sampled)
          .Cell(run.regret.Median(), 3)
          .Cell(run.regret.Percentile(90), 3)
          .Cell(run.regret.Max(), 3)
          .Cell(100.0 * run.plans_differ / std::max(1, sampled), 0);
    }
  }
  t.Print();
  std::printf(
      "\nExact regret is 1 by construction (same DP, same space). The gap\n"
      "between independence and sketch is what the ingest statistics buy;\n"
      "the gap between simpli2 and 1 is the price of planning with no\n"
      "estimates at all.\n");
  MaybeReportProcessMetrics();
  return 0;
}
