// Experiment I3 — how restrictive are the conditions, and how much do the
// heuristics lose without them? For random databases across shapes and
// skews we measure (a) how often each condition holds, and (b) the τ
// penalty of the no-CP and linear-no-CP restrictions relative to the true
// optimum, split by whether the relevant condition held.
//
// Each trial builds its own database + CostEngine, so trials fan out over
// a ParallelSweep; seeds are fixed per-trial formulas, keeping the output
// identical for any thread count.

#include <cstdio>

#include "common/rng.h"
#include "core/conditions.h"
#include "core/cost.h"
#include "enumerate/parallel_sweep.h"
#include "optimize/dp.h"
#include "report/stats.h"
#include "report/table.h"
#include "workload/generator.h"
#include "workload/keyed_generator.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

namespace {

struct Bucket {
  SampleStats nocp_penalty;    // best-no-CP / optimum
  SampleStats linear_penalty;  // best-linear-no-CP / optimum
};

}  // namespace

int main() {
  const int kTrials = 40;

  PrintSection("I3a: condition prevalence by workload family");
  {
    ReportTable t({"workload", "databases", "C1", "C1'", "C2", "C3", "C4"});
    struct Family {
      const char* name;
      bool keyed;
      double skew;
    };
    for (const Family& family :
         {Family{"random uniform", false, 0.0},
          Family{"random skewed", false, 1.5},
          Family{"keyed (joins on superkeys)", true, 0.0}}) {
      struct TrialConditions {
        bool sampled = false;
        bool c1 = false, c1s = false, c2 = false, c3 = false, c4 = false;
      };
      std::vector<TrialConditions> verdicts =
          ParallelSweep(kTrials, [&](int trial) {
            TrialConditions v;
            Rng rng(static_cast<uint64_t>(trial) * 7349 + 31);
            Database db;
            if (family.keyed) {
              KeyedGeneratorOptions options;
              options.shape =
                  trial % 2 == 0 ? QueryShape::kChain : QueryShape::kStar;
              options.relation_count = 4;
              options.rows_per_relation = 5;
              options.join_domain = 7;
              db = KeyedDatabase(options, rng);
            } else {
              GeneratorOptions options;
              options.shape = static_cast<QueryShape>(trial % 4);
              options.relation_count = 4;
              options.rows_per_relation = 6;
              options.join_domain = 3;
              options.join_skew = family.skew;
              db = RandomDatabase(options, rng);
            }
            CostEngine engine(&db);
            if (engine.Tau(db.scheme().full_mask()) == 0) return v;
            v.sampled = true;
            ConditionsSummary s = CheckAllConditions(engine);
            v.c1 = s.c1.satisfied;
            v.c1s = s.c1_strict.satisfied;
            v.c2 = s.c2.satisfied;
            v.c3 = s.c3.satisfied;
            v.c4 = s.c4.satisfied;
            return v;
          });
      int sampled = 0, c1 = 0, c1s = 0, c2 = 0, c3 = 0, c4 = 0;
      for (const TrialConditions& v : verdicts) {
        sampled += v.sampled;
        c1 += v.c1;
        c1s += v.c1s;
        c2 += v.c2;
        c3 += v.c3;
        c4 += v.c4;
      }
      t.Row()
          .Cell(family.name)
          .Cell(sampled)
          .Cell(c1)
          .Cell(c1s)
          .Cell(c2)
          .Cell(c3)
          .Cell(c4);
    }
    t.Print();
  }

  PrintSection("I3b: heuristic tau penalty vs the conditions");
  {
    struct TrialPenalty {
      bool sampled = false;
      bool conditions_hold = false;
      double nocp = 0.0;
      bool has_linear = false;
      double linear = 0.0;
    };
    std::vector<TrialPenalty> verdicts =
        ParallelSweep(kTrials * 2, [&](int trial) {
          TrialPenalty v;
          Rng rng(static_cast<uint64_t>(trial) * 10007 + 3);
          Database db;
          if (trial % 2 == 0) {
            KeyedGeneratorOptions options;
            options.shape =
                trial % 4 == 0 ? QueryShape::kChain : QueryShape::kStar;
            options.relation_count = 5;
            options.rows_per_relation = 5;
            options.join_domain = 7;
            db = KeyedDatabase(options, rng);
          } else {
            GeneratorOptions options;
            options.shape = static_cast<QueryShape>(trial % 4);
            options.relation_count = 5;
            options.rows_per_relation = 6;
            options.join_domain = 3;
            options.join_skew = 1.0;
            db = RandomDatabase(options, rng);
          }
          CostEngine engine(&db);
          if (engine.Tau(db.scheme().full_mask()) == 0) return v;
          if (!db.scheme().Connected(db.scheme().full_mask())) return v;
          auto optimum =
              OptimizeDp(engine, db.scheme().full_mask(),
                         {SearchSpace::kBushy, true});
          auto nocp = OptimizeDp(engine, db.scheme().full_mask(),
                                 {SearchSpace::kBushy, false});
          auto linear_nocp = OptimizeDp(engine, db.scheme().full_mask(),
                                        {SearchSpace::kLinear, false});
          if (!optimum || optimum->cost == 0 || !nocp) return v;
          v.sampled = true;
          ConditionsSummary s = CheckAllConditions(engine);
          v.conditions_hold = s.c1.satisfied && s.c2.satisfied;
          v.nocp = static_cast<double>(nocp->cost) /
                   static_cast<double>(optimum->cost);
          if (linear_nocp) {
            v.has_linear = true;
            v.linear = static_cast<double>(linear_nocp->cost) /
                       static_cast<double>(optimum->cost);
          }
          return v;
        });
    Bucket with_conditions, without_conditions;
    int with_count = 0, without_count = 0;
    for (const TrialPenalty& v : verdicts) {
      if (!v.sampled) continue;
      Bucket& bucket = v.conditions_hold ? with_conditions : without_conditions;
      (v.conditions_hold ? with_count : without_count)++;
      bucket.nocp_penalty.Add(v.nocp);
      if (v.has_linear) bucket.linear_penalty.Add(v.linear);
    }
    ReportTable t({"condition C1+C2", "databases", "no-CP penalty (median)",
                   "no-CP penalty (max)", "linear+no-CP penalty (median)",
                   "linear+no-CP penalty (max)"});
    auto emit = [&](const char* label, Bucket& b, int count) {
      if (b.nocp_penalty.count() == 0) return;
      t.Row()
          .Cell(label)
          .Cell(count)
          .Cell(b.nocp_penalty.Median(), 3)
          .Cell(b.nocp_penalty.Max(), 3)
          .Cell(b.linear_penalty.count() ? b.linear_penalty.Median() : 0.0, 3)
          .Cell(b.linear_penalty.count() ? b.linear_penalty.Max() : 0.0, 3);
    };
    emit("holds", with_conditions, with_count);
    emit("fails", without_conditions, without_count);
    t.Print();
    std::printf(
        "\nWhen C1+C2 hold the no-CP penalty is exactly 1.000 (Theorem 2);\n"
        "when they fail the restriction can cost real factors — the risk\n"
        "the paper quantifies via its counterexamples.\n");
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
