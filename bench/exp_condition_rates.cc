// Experiment I3 — how restrictive are the conditions, and how much do the
// heuristics lose without them? For random databases across shapes and
// skews we measure (a) how often each condition holds, and (b) the τ
// penalty of the no-CP and linear-no-CP restrictions relative to the true
// optimum, split by whether the relevant condition held.

#include <cstdio>

#include "common/rng.h"
#include "core/conditions.h"
#include "core/cost.h"
#include "optimize/dp.h"
#include "report/stats.h"
#include "report/table.h"
#include "workload/generator.h"
#include "workload/keyed_generator.h"

using namespace taujoin;  // NOLINT

namespace {

struct Bucket {
  SampleStats nocp_penalty;    // best-no-CP / optimum
  SampleStats linear_penalty;  // best-linear-no-CP / optimum
};

}  // namespace

int main() {
  const int kTrials = 40;

  PrintSection("I3a: condition prevalence by workload family");
  {
    ReportTable t({"workload", "databases", "C1", "C1'", "C2", "C3", "C4"});
    struct Family {
      const char* name;
      bool keyed;
      double skew;
    };
    for (const Family& family :
         {Family{"random uniform", false, 0.0},
          Family{"random skewed", false, 1.5},
          Family{"keyed (joins on superkeys)", true, 0.0}}) {
      int sampled = 0, c1 = 0, c1s = 0, c2 = 0, c3 = 0, c4 = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng rng(static_cast<uint64_t>(trial) * 7349 + 31);
        Database db;
        if (family.keyed) {
          KeyedGeneratorOptions options;
          options.shape =
              trial % 2 == 0 ? QueryShape::kChain : QueryShape::kStar;
          options.relation_count = 4;
          options.rows_per_relation = 5;
          options.join_domain = 7;
          db = KeyedDatabase(options, rng);
        } else {
          GeneratorOptions options;
          options.shape = static_cast<QueryShape>(trial % 4);
          options.relation_count = 4;
          options.rows_per_relation = 6;
          options.join_domain = 3;
          options.join_skew = family.skew;
          db = RandomDatabase(options, rng);
        }
        JoinCache cache(&db);
        if (cache.Tau(db.scheme().full_mask()) == 0) continue;
        ++sampled;
        ConditionsSummary s = CheckAllConditions(cache);
        c1 += s.c1.satisfied;
        c1s += s.c1_strict.satisfied;
        c2 += s.c2.satisfied;
        c3 += s.c3.satisfied;
        c4 += s.c4.satisfied;
      }
      t.Row()
          .Cell(family.name)
          .Cell(sampled)
          .Cell(c1)
          .Cell(c1s)
          .Cell(c2)
          .Cell(c3)
          .Cell(c4);
    }
    t.Print();
  }

  PrintSection("I3b: heuristic tau penalty vs the conditions");
  {
    Bucket with_conditions, without_conditions;
    int with_count = 0, without_count = 0;
    for (int trial = 0; trial < kTrials * 2; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 10007 + 3);
      Database db;
      if (trial % 2 == 0) {
        KeyedGeneratorOptions options;
        options.shape = trial % 4 == 0 ? QueryShape::kChain : QueryShape::kStar;
        options.relation_count = 5;
        options.rows_per_relation = 5;
        options.join_domain = 7;
        db = KeyedDatabase(options, rng);
      } else {
        GeneratorOptions options;
        options.shape = static_cast<QueryShape>(trial % 4);
        options.relation_count = 5;
        options.rows_per_relation = 6;
        options.join_domain = 3;
        options.join_skew = 1.0;
        db = RandomDatabase(options, rng);
      }
      JoinCache cache(&db);
      if (cache.Tau(db.scheme().full_mask()) == 0) continue;
      if (!db.scheme().Connected(db.scheme().full_mask())) continue;
      ExactSizeModel model(&cache);
      auto optimum = OptimizeDp(db.scheme(), db.scheme().full_mask(), model,
                                {SearchSpace::kBushy, true});
      auto nocp = OptimizeDp(db.scheme(), db.scheme().full_mask(), model,
                             {SearchSpace::kBushy, false});
      auto linear_nocp = OptimizeDp(db.scheme(), db.scheme().full_mask(),
                                    model, {SearchSpace::kLinear, false});
      if (!optimum || optimum->cost == 0 || !nocp) continue;
      ConditionsSummary s = CheckAllConditions(cache);
      Bucket& bucket = (s.c1.satisfied && s.c2.satisfied) ? with_conditions
                                                          : without_conditions;
      ((s.c1.satisfied && s.c2.satisfied) ? with_count : without_count)++;
      bucket.nocp_penalty.Add(static_cast<double>(nocp->cost) /
                              static_cast<double>(optimum->cost));
      if (linear_nocp) {
        bucket.linear_penalty.Add(static_cast<double>(linear_nocp->cost) /
                                  static_cast<double>(optimum->cost));
      }
    }
    ReportTable t({"condition C1+C2", "databases", "no-CP penalty (median)",
                   "no-CP penalty (max)", "linear+no-CP penalty (median)",
                   "linear+no-CP penalty (max)"});
    auto emit = [&](const char* label, Bucket& b, int count) {
      if (b.nocp_penalty.count() == 0) return;
      t.Row()
          .Cell(label)
          .Cell(count)
          .Cell(b.nocp_penalty.Median(), 3)
          .Cell(b.nocp_penalty.Max(), 3)
          .Cell(b.linear_penalty.count() ? b.linear_penalty.Median() : 0.0, 3)
          .Cell(b.linear_penalty.count() ? b.linear_penalty.Max() : 0.0, 3);
    };
    emit("holds", with_conditions, with_count);
    emit("fails", without_conditions, without_count);
    t.Print();
    std::printf(
        "\nWhen C1+C2 hold the no-CP penalty is exactly 1.000 (Theorem 2);\n"
        "when they fail the restriction can cost real factors — the risk\n"
        "the paper quantifies via its counterexamples.\n");
  }
  return 0;
}
