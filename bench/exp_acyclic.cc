// Experiment A2 — §5's discussion: γ-acyclic pairwise-consistent databases
// satisfy C4; full semijoin reduction (Bernstein–Chiu) achieves global
// consistency on α-acyclic schemes; Yannakakis evaluation is monotone
// increasing on consistent inputs and its result contains every input
// tuple (Goodman–Shmueli).

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "core/conditions.h"
#include "core/cost.h"
#include "core/properties.h"
#include "enumerate/strategy_enumerator.h"
#include "relational/operators.h"
#include "report/stats.h"
#include "report/table.h"
#include "scheme/acyclicity.h"
#include "semijoin/consistency.h"
#include "semijoin/full_reducer.h"
#include "semijoin/yannakakis.h"
#include "workload/generator.h"
#include "workload/star_schema.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  const int kTrials = 30;

  PrintSection("A2a: acyclicity degrees of the standard shapes");
  {
    ReportTable t({"shape (n=5)", "Berge", "gamma", "beta", "alpha"});
    for (QueryShape shape : {QueryShape::kChain, QueryShape::kStar,
                             QueryShape::kCycle, QueryShape::kClique}) {
      DatabaseScheme scheme = MakeShapedScheme(shape, 5);
      t.Row()
          .Cell(QueryShapeToString(shape))
          .Cell(IsBergeAcyclic(scheme) ? "yes" : "no")
          .Cell(IsGammaAcyclic(scheme) ? "yes" : "no")
          .Cell(IsBetaAcyclic(scheme) ? "yes" : "no")
          .Cell(IsAlphaAcyclic(scheme) ? "yes" : "no");
    }
    t.Print();
  }

  PrintSection("A2b: gamma-acyclic + pairwise consistent implies C4 (Section 5)");
  {
    int sampled = 0, consistent = 0, c4 = 0, monotone = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 9176 + 11);
      Database db = ConsistentTreeDatabase(4, 6 + trial % 4, 4, rng);
      JoinCache cache(&db);
      if (cache.Tau(db.scheme().full_mask()) == 0) continue;
      ++sampled;
      if (IsPairwiseConsistent(db)) ++consistent;
      if (CheckC4(cache).satisfied) ++c4;
      // §5: on such databases any strategy without spurious tuples is
      // monotone increasing; check all CP-free strategies.
      bool all_monotone = true;
      ForEachStrategy(db.scheme(), db.scheme().full_mask(),
                      StrategySpace::kNoCartesian, [&](const Strategy& s) {
                        if (!IsMonotoneIncreasing(s, cache)) {
                          all_monotone = false;
                          return false;
                        }
                        return true;
                      });
      if (all_monotone) ++monotone;
    }
    ReportTable t({"quantity", "expected", "measured"});
    t.Row().Cell("databases (non-empty join)").Cell("-").Cell(sampled);
    t.Row().Cell("pairwise consistent after reduction").Cell(sampled).Cell(
        consistent);
    t.Row().Cell("C4 holds").Cell(sampled).Cell(c4);
    t.Row()
        .Cell("all CP-free strategies monotone increasing")
        .Cell(sampled)
        .Cell(monotone);
    t.Print();
  }

  PrintSection("A2c: full reducer and Yannakakis evaluation");
  {
    int sampled = 0, globally_consistent = 0, join_preserved = 0,
        yannakakis_correct = 0, contains_inputs = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 2213 + 7);
      GeneratorOptions options;
      options.shape = trial % 2 == 0 ? QueryShape::kChain : QueryShape::kStar;
      options.relation_count = 5;
      options.rows_per_relation = 8;
      options.join_domain = 4;
      Database db = RandomDatabase(options, rng);
      ++sampled;
      StatusOr<Database> reduced = FullReduce(db);
      if (!reduced.ok()) continue;
      Relation full = db.Evaluate();
      bool gc = true;
      for (int i = 0; i < db.size(); ++i) {
        if (!(reduced->state(i) == Project(full, db.scheme().scheme(i)))) {
          gc = false;
        }
      }
      globally_consistent += gc;
      join_preserved += (reduced->Evaluate() == full);
      StatusOr<YannakakisResult> yr = YannakakisEvaluate(db);
      if (yr.ok() && yr->result == full) ++yannakakis_correct;
      // Goodman–Shmueli: on the reduced database every input tuple
      // survives to the final result.
      bool contained = true;
      for (int i = 0; i < reduced->size(); ++i) {
        if (!(Project(full, db.scheme().scheme(i)) == reduced->state(i))) {
          contained = false;
        }
      }
      contains_inputs += contained;
    }
    ReportTable t({"quantity", "expected", "measured"});
    t.Row().Cell("acyclic databases").Cell("-").Cell(sampled);
    t.Row()
        .Cell("full reducer achieves global consistency")
        .Cell(sampled)
        .Cell(globally_consistent);
    t.Row().Cell("reduction preserves the join").Cell(sampled).Cell(
        join_preserved);
    t.Row()
        .Cell("Yannakakis result equals naive join")
        .Cell(sampled)
        .Cell(yannakakis_correct);
    t.Row()
        .Cell("reduced states = projections of result")
        .Cell(sampled)
        .Cell(contains_inputs);
    t.Print();
  }

  PrintSection("A2b': necessity — pairwise consistency alone does NOT give C4");
  {
    // On cyclic schemes, pairwise-consistent databases can have joins
    // smaller than their inputs (globally inconsistent "ghost" tuples), so
    // γ-acyclicity in §5's claim carries real weight.
    int sampled = 0, violations = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 37 + 5);
      GeneratorOptions options;
      options.shape = QueryShape::kCycle;
      options.relation_count = 4;
      options.rows_per_relation = 8;
      options.join_domain = 3;
      Database db = RandomDatabase(options, rng);
      Database reduced = ReduceToPairwiseConsistency(db);
      if (!IsPairwiseConsistent(reduced)) continue;
      bool nonempty = false;
      for (int i = 0; i < reduced.size(); ++i) {
        if (!reduced.state(i).empty()) nonempty = true;
      }
      if (!nonempty) continue;
      ++sampled;
      JoinCache cache(&reduced);
      if (!CheckC4(cache).satisfied) ++violations;
    }
    ReportTable t({"quantity", "measured"});
    t.Row().Cell("cyclic pairwise-consistent databases").Cell(sampled);
    t.Row().Cell("C4 violated (expected: > 0)").Cell(violations);
    t.Print();
  }

  PrintSection(
      "A2d: is Yannakakis' strategy tau-optimal? (open question in Section 5)");
  {
    // Compare the τ of Yannakakis' join-tree order (after reduction)
    // against the exact τ-optimum over all strategies on the *reduced*
    // database, where both operate on the same states.
    SampleStats ratio;
    int optimal_count = 0, sampled = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 5801 + 3);
      GeneratorOptions options;
      options.shape = trial % 2 == 0 ? QueryShape::kChain : QueryShape::kStar;
      options.relation_count = 5;
      options.rows_per_relation = 8;
      options.join_domain = 4;
      Database raw = RandomDatabase(options, rng);
      StatusOr<Database> reduced = FullReduce(raw);
      if (!reduced.ok()) continue;
      JoinCache cache(&*reduced);
      if (cache.Tau(reduced->scheme().full_mask()) == 0) continue;
      StatusOr<YannakakisResult> yr = YannakakisEvaluate(*reduced);
      if (!yr.ok()) continue;
      ++sampled;
      uint64_t yannakakis_tau = TauCost(yr->strategy, cache);
      uint64_t best = UINT64_MAX;
      ForEachStrategy(reduced->scheme(), reduced->scheme().full_mask(),
                      StrategySpace::kAll, [&](const Strategy& s) {
                        best = std::min(best, TauCost(s, cache));
                        return true;
                      });
      ratio.Add(static_cast<double>(yannakakis_tau) /
                static_cast<double>(best));
      if (yannakakis_tau == best) ++optimal_count;
    }
    ReportTable t({"quantity", "measured"});
    t.Row().Cell("reduced databases").Cell(sampled);
    t.Row().Cell("Yannakakis order already tau-optimal").Cell(optimal_count);
    t.Row().Cell("median tau ratio vs optimum").Cell(ratio.Median(), 3);
    t.Row().Cell("max tau ratio vs optimum").Cell(ratio.Max(), 3);
    t.Print();
    std::printf(
        "\nThe paper asks whether Yannakakis' (polynomial, lossless) order\n"
        "is tau-optimal; measured: often close, not always exact — the\n"
        "question is genuinely open, and these are concrete near-miss\n"
        "instances.\n");
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
