// Experiment E3 — Example 3 (§4): necessity of C1' in Theorem 1. Without
// strictness a τ-optimum *linear* strategy may use a Cartesian product.

#include <cstdio>

#include "core/conditions.h"
#include "core/cost.h"
#include "core/properties.h"
#include "core/strategy_parser.h"
#include "optimize/exhaustive.h"
#include "report/table.h"
#include "workload/paper_data.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  Database db = Example3Database();
  JoinCache cache(&db);

  std::printf(
      "Database: games/students (GS), enrollments (SC), course labs (CL).\n"
      "Query: \"Do athletes avoid courses requiring laboratory work?\"\n"
      "(Source-table rows partially garbled in our copy; reconstruction\n"
      "preserves every published count — see DESIGN.md.)\n");

  PrintSection("E3: the three strategies (paper: all generate 4 intermediate tuples)");
  {
    ReportTable t({"strategy", "intermediate (paper)", "intermediate (measured)",
                   "total tau", "linear", "uses CP"});
    const char* texts[] = {"((GS SC) CL)", "((SC CL) GS)", "((GS CL) SC)"};
    for (const char* text : texts) {
      Strategy s = ParseStrategyOrDie(db, text);
      t.Row()
          .Cell(s.ToString(db))
          .Cell(4)
          .Cell(StepCosts(s, cache)[0])
          .Cell(TauCost(s, cache))
          .Cell(IsLinear(s) ? "yes" : "no")
          .Cell(UsesCartesianProducts(s, db.scheme()) ? "yes" : "no");
    }
    t.Print();
  }

  PrintSection("E3: claims");
  {
    auto optimum =
        OptimizeExhaustive(cache, db.scheme().full_mask(), StrategySpace::kAll);
    Strategy s3 = ParseStrategyOrDie(db, "((GS CL) SC)");
    ReportTable t({"claim", "paper", "measured"});
    t.Row().Cell("all three strategies tau-optimum").Cell("yes").Cell(
        AllOptima(cache, db.scheme().full_mask(), StrategySpace::kAll).size() ==
                3
            ? "yes"
            : "no");
    t.Row()
        .Cell("(GS x CL) join SC is linear, tau-optimum, uses a CP")
        .Cell("yes")
        .Cell(IsLinear(s3) && TauCost(s3, cache) == optimum->cost &&
                      UsesCartesianProducts(s3, db.scheme())
                  ? "yes"
                  : "no");
    t.Row().Cell("satisfies C1").Cell("yes").Cell(
        CheckC1(cache).satisfied ? "yes" : "no");
    t.Row().Cell("satisfies C1'").Cell("no").Cell(
        CheckC1Strict(cache).satisfied ? "yes" : "no");
    t.Print();
    std::printf(
        "\nConclusion (paper): Theorem 1's hypothesis C1' cannot be relaxed\n"
        "to C1 — with only C1, an optimal linear strategy may use Cartesian\n"
        "products.\n");
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
