// Experiment E1 — Example 1 (§3): under C1 alone the τ-optimum strategy
// may still use Cartesian products. Regenerates every number printed in
// the example.

#include <cstdio>

#include "core/conditions.h"
#include "core/cost.h"
#include "core/properties.h"
#include "core/strategy_parser.h"
#include "optimize/exhaustive.h"
#include "report/table.h"
#include "workload/paper_data.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  Database db = Example1Database();
  JoinCache cache(&db);

  PrintSection("E1: Example 1 — base cardinalities (paper vs measured)");
  {
    ReportTable t({"quantity", "paper", "measured"});
    t.Row().Cell("tau(R1)").Cell(4).Cell(cache.Tau(0b0001));
    t.Row().Cell("tau(R2)").Cell(4).Cell(cache.Tau(0b0010));
    t.Row().Cell("tau(R1 join R2)").Cell(10).Cell(cache.Tau(0b0011));
    t.Row().Cell("tau(R3)").Cell(7).Cell(cache.Tau(0b0100));
    t.Row().Cell("tau(R4)").Cell(7).Cell(cache.Tau(0b1000));
    t.Print();
  }

  PrintSection("E1: strategy costs (paper vs measured)");
  {
    struct Row {
      const char* name;
      const char* text;
      uint64_t paper;
    };
    Row rows[] = {
        {"S1 = ((R1 R2) R3) R4", "(((R1 R2) R3) R4)", 570},
        {"S2 = ((R1 R2) R4) R3", "(((R1 R2) R4) R3)", 570},
        {"S3 = (R1 R2) (R3 R4)", "((R1 R2) (R3 R4))", 549},
        {"S4 = (R1 R3) (R2 R4)", "((R1 R3) (R2 R4))", 546},
    };
    ReportTable t({"strategy", "paper tau", "measured tau", "uses CP"});
    for (const Row& r : rows) {
      Strategy s = ParseStrategyOrDie(db, r.text);
      t.Row()
          .Cell(r.name)
          .Cell(r.paper)
          .Cell(TauCost(s, cache))
          .Cell(UsesCartesianProducts(s, db.scheme()) ? "yes" : "no");
    }
    t.Print();
  }

  PrintSection("E1: claims");
  {
    ConditionReport c1 = CheckC1(cache);
    auto optimum =
        OptimizeExhaustive(cache, db.scheme().full_mask(), StrategySpace::kAll);
    auto avoider = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                      StrategySpace::kAvoidsCartesian);
    ReportTable t({"claim", "paper", "measured"});
    t.Row().Cell("database satisfies C1").Cell("yes").Cell(
        c1.satisfied ? "yes" : "no");
    t.Row()
        .Cell("strategies avoiding Cartesian products")
        .Cell(3)
        .Cell(CountStrategies(db.scheme(), db.scheme().full_mask(),
                              StrategySpace::kAvoidsCartesian));
    t.Row().Cell("best avoiding-CP tau").Cell(549).Cell(avoider->cost);
    t.Row().Cell("global optimum tau").Cell(546).Cell(optimum->cost);
    t.Row()
        .Cell("optimum avoids Cartesian products")
        .Cell("no")
        .Cell(AvoidsCartesianProducts(optimum->strategy, db.scheme()) ? "yes"
                                                                      : "no");
    t.Print();
    std::printf("\noptimum strategy: %s\n",
                optimum->strategy.ToString(db).c_str());
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
