// Experiment I4 — the paper's second §1 critique: optimizers built on
// uniformity + independence assumptions mis-estimate sizes on real
// (skewed, correlated) data. We quantify (a) the estimator's error on
// intermediate sizes and (b) the true-τ penalty of letting it drive plan
// choice, as value skew grows — against the paper's exact-count measure.

#include <cstdio>

#include "common/rng.h"
#include "core/cost.h"
#include "optimize/dp.h"
#include "report/stats.h"
#include "report/table.h"
#include "workload/generator.h"
#include "workload/mini_tpch.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  const int kTrials = 25;

  PrintSection("I4a: estimation error on intermediate sizes, by skew");
  {
    ReportTable t({"skew", "databases", "median |est/true|-ratio",
                   "p90 ratio", "max ratio"});
    for (double skew : {0.0, 0.5, 1.0, 1.5, 2.0}) {
      SampleStats ratio;
      int sampled = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng rng(static_cast<uint64_t>(trial) * 424243 +
                static_cast<uint64_t>(skew * 8));
        GeneratorOptions options;
        options.shape = static_cast<QueryShape>(trial % 4);
        options.relation_count = 5;
        options.rows_per_relation = 10;
        options.join_domain = 5;
        options.join_skew = skew;
        Database db = RandomDatabase(options, rng);
        JoinCache cache(&db);
        IndependenceSizeModel estimator(&db);
        ++sampled;
        // Compare on every connected subset of ≥ 2 relations.
        ForEachNonEmptySubmask(db.scheme().full_mask(), [&](RelMask mask) {
          if (PopCount(mask) < 2 || !db.scheme().Connected(mask)) return;
          uint64_t truth = cache.Tau(mask);
          // Clamp zero estimates to 1 tuple so the symmetric error factor
          // stays finite (the estimator rounding a small size to 0).
          double est = std::max<double>(1.0, static_cast<double>(estimator.Tau(mask)));
          if (truth == 0) return;
          double r = est / static_cast<double>(truth);
          ratio.Add(r >= 1 ? r : 1 / r);  // symmetric error factor
        });
      }
      t.Row()
          .Cell(skew, 1)
          .Cell(sampled)
          .Cell(ratio.Median(), 2)
          .Cell(ratio.Percentile(90), 2)
          .Cell(ratio.Max(), 2);
    }
    t.Print();
  }

  PrintSection("I4b: true tau of estimator-chosen plans vs exact-cost plans");
  {
    ReportTable t({"skew", "databases", "median penalty", "max penalty",
                   "plans differ (%)"});
    for (double skew : {0.0, 1.0, 2.0}) {
      SampleStats penalty;
      int differ = 0, sampled = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng rng(static_cast<uint64_t>(trial) * 78125 +
                static_cast<uint64_t>(skew * 16) + 1);
        GeneratorOptions options;
        options.shape = static_cast<QueryShape>(trial % 4);
        options.relation_count = 6;
        options.rows_per_relation = 10;
        options.join_domain = 5;
        options.join_skew = skew;
        Database db = RandomDatabase(options, rng);
        JoinCache cache(&db);
        ExactSizeModel exact(&cache);
        IndependenceSizeModel estimator(&db);
        auto exact_plan = OptimizeDp(db.scheme(), db.scheme().full_mask(),
                                     exact, {SearchSpace::kBushy, true});
        auto est_plan = OptimizeDp(db.scheme(), db.scheme().full_mask(),
                                   estimator, {SearchSpace::kBushy, true});
        if (!exact_plan || !est_plan || exact_plan->cost == 0) continue;
        ++sampled;
        uint64_t est_true = TauCost(est_plan->strategy, cache);
        penalty.Add(static_cast<double>(est_true) /
                    static_cast<double>(exact_plan->cost));
        if (!est_plan->strategy.EquivalentTo(exact_plan->strategy)) ++differ;
      }
      t.Row()
          .Cell(skew, 1)
          .Cell(sampled)
          .Cell(penalty.Median(), 3)
          .Cell(penalty.Max(), 3)
          .Cell(100.0 * differ / std::max(1, sampled), 0);
    }
    t.Print();
  }

  PrintSection("I4c: the same on the mini order-processing schema");
  {
    ReportTable t({"skew", "exact plan (tau)", "estimator plan (true tau)"});
    for (double skew : {0.2, 0.8, 1.4}) {
      Rng rng(777 + static_cast<uint64_t>(skew * 100));
      MiniTpchOptions options;
      options.lineitems = 60;
      options.orders = 16;
      options.customers = 5;
      options.skew = skew;
      MiniTpch tpch = MakeMiniTpch(options, rng);
      JoinCache cache(&tpch.database);
      ExactSizeModel exact(&cache);
      IndependenceSizeModel estimator(&tpch.database);
      auto exact_plan =
          OptimizeDp(tpch.database.scheme(), tpch.database.scheme().full_mask(),
                     exact, {SearchSpace::kBushy, true});
      auto est_plan =
          OptimizeDp(tpch.database.scheme(), tpch.database.scheme().full_mask(),
                     estimator, {SearchSpace::kBushy, true});
      t.Row()
          .Cell(skew, 1)
          .Cell(exact_plan->strategy.ToString(tpch.database) + "  tau=" +
                std::to_string(exact_plan->cost))
          .Cell(est_plan->strategy.ToString(tpch.database) + "  tau=" +
                std::to_string(TauCost(est_plan->strategy, cache)));
    }
    t.Print();
    std::printf(
        "\nThe paper sidesteps all of this by defining optimality on exact\n"
        "tuple counts and replacing statistical assumptions with semantic\n"
        "conditions (C1-C4) — these tables measure the gap it sidesteps.\n");
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
