// Experiment E2 — Example 2 (§3): C1 and C2 are independent conditions.

#include <cstdio>

#include "core/conditions.h"
#include "core/cost.h"
#include "report/table.h"
#include "workload/paper_data.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  PrintSection("E2: Example 1's database — C1 holds, C2 fails");
  {
    Database db = Example1Database();
    JoinCache cache(&db);
    ReportTable t({"quantity", "paper", "measured"});
    t.Row().Cell("tau(R1 join R2)").Cell(10).Cell(cache.Tau(0b0011));
    t.Row().Cell("tau(R1)").Cell(4).Cell(cache.Tau(0b0001));
    t.Row().Cell("tau(R2)").Cell(4).Cell(cache.Tau(0b0010));
    t.Row().Cell("satisfies C1").Cell("yes").Cell(
        CheckC1(cache).satisfied ? "yes" : "no");
    t.Row().Cell("satisfies C2").Cell("no").Cell(
        CheckC2(cache).satisfied ? "yes" : "no");
    t.Print();
  }

  PrintSection("E2: the R' database — C2 holds, C1 fails");
  {
    Database db = Example2Database();
    JoinCache cache(&db);
    ReportTable t({"quantity", "paper", "measured"});
    t.Row().Cell("tau(R1')").Cell(8).Cell(cache.Tau(0b001));
    t.Row().Cell("tau(R2')").Cell(3).Cell(cache.Tau(0b010));
    t.Row().Cell("tau(R1' join R2')").Cell(7).Cell(cache.Tau(0b011));
    t.Row().Cell("tau(R3')").Cell(2).Cell(cache.Tau(0b100));
    t.Row().Cell("tau(R2' join R3') [= 3*2]").Cell(6).Cell(cache.Tau(0b110));
    t.Row().Cell("satisfies C2").Cell("yes").Cell(
        CheckC2(cache).satisfied ? "yes" : "no");
    t.Row().Cell("satisfies C1").Cell("no").Cell(
        CheckC1(cache).satisfied ? "yes" : "no");
    t.Print();
    ConditionReport c1 = CheckC1(cache);
    if (c1.witness.has_value()) {
      std::printf("\nC1 counterexample: %s\n",
                  c1.witness->ToString(db.scheme()).c_str());
    }
    std::printf("\nConclusion (paper): C1 and C2 are independent.\n");
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
