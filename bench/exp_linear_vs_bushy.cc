// Experiment I2 — the introduction's motivating observation (credited to
// the GAMMA experiments [9]): "for large queries, the cheapest linear
// strategy could be significantly more expensive than the cheapest
// possible (nonlinear) strategy." We regenerate the phenomenon with exact
// τ costs on synthetic workloads: the linear-over-bushy overhead by query
// size and shape, and where bushy wins most.

#include <cstdio>

#include "common/rng.h"
#include "core/cost.h"
#include "optimize/dp.h"
#include "report/stats.h"
#include "report/table.h"
#include "workload/generator.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  const int kTrials = 25;

  PrintSection("I2: cheapest linear vs cheapest bushy (exact tau), by shape and n");
  ReportTable table({"shape", "n", "median lin/bushy", "p90 lin/bushy",
                     "max lin/bushy", "bushy wins (%)"});
  for (QueryShape shape : {QueryShape::kChain, QueryShape::kStar,
                           QueryShape::kCycle, QueryShape::kClique}) {
    for (int n : {4, 6, 8, 10}) {
      SampleStats ratio;
      int bushy_strictly_better = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng rng(static_cast<uint64_t>(trial) * 1000003 +
                static_cast<uint64_t>(n) * 97 + static_cast<uint64_t>(shape));
        GeneratorOptions options;
        options.shape = shape;
        options.relation_count = n;
        options.rows_per_relation = 8;
        options.join_domain = 4;
        options.join_skew = 1.0;  // skew is what makes bushy plans win
        Database db = RandomDatabase(options, rng);
        JoinCache cache(&db);
        ExactSizeModel model(&cache);
        auto bushy = OptimizeDp(db.scheme(), db.scheme().full_mask(), model,
                                {SearchSpace::kBushy, true});
        auto linear = OptimizeDp(db.scheme(), db.scheme().full_mask(), model,
                                 {SearchSpace::kLinear, true});
        if (!bushy || !linear || bushy->cost == 0) continue;
        ratio.Add(static_cast<double>(linear->cost) /
                  static_cast<double>(bushy->cost));
        if (linear->cost > bushy->cost) ++bushy_strictly_better;
      }
      if (ratio.count() == 0) continue;
      table.Row()
          .Cell(QueryShapeToString(shape))
          .Cell(n)
          .Cell(ratio.Median(), 3)
          .Cell(ratio.Percentile(90), 3)
          .Cell(ratio.Max(), 3)
          .Cell(100.0 * bushy_strictly_better /
                    static_cast<double>(ratio.count()),
                0);
    }
  }
  table.Print();
  std::printf(
      "\nShape of the paper's claim: the gap exists (ratios above 1) and\n"
      "grows with query size — strongest on sparse query graphs (chains,\n"
      "cycles) where a linear order is forced through bad intermediates,\n"
      "absent on cliques where every linear order can follow selectivity.\n"
      "Exact ratios differ from GAMMA's 1990 hardware numbers; the\n"
      "*ordering* is what the reproduction targets.\n");
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
