// Experiment I5 — the optimizer-algorithms landscape around the paper:
// the polynomial algorithms the paper cites (Ibaraki–Kameda's IKKBZ [11],
// greedy, Swami-style iterative improvement [21]) against the exact-τ
// optima this library can compute, and the §4-driven condition-aware
// policy that picks a provably safe restricted search.

#include <cstdio>

#include "common/rng.h"
#include "core/cost.h"
#include "core/properties.h"
#include "optimize/condition_aware.h"
#include "optimize/dp.h"
#include "optimize/greedy.h"
#include "optimize/ikkbz.h"
#include "optimize/iterative.h"
#include "report/stats.h"
#include "report/table.h"
#include "workload/generator.h"
#include "workload/keyed_generator.h"
#include "workload/mini_tpch.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  const int kTrials = 25;

  PrintSection("I5a: polynomial heuristics vs exact-tau optimum (ratio of true tau)");
  {
    ReportTable t({"shape", "n", "greedy median", "greedy max",
                   "iterative median", "iterative max", "IKKBZ(ASI) median",
                   "IKKBZ(ASI) max"});
    for (QueryShape shape : {QueryShape::kChain, QueryShape::kStar}) {
      for (int n : {5, 7, 9}) {
        SampleStats greedy_ratio, iterative_ratio, ikkbz_ratio;
        for (int trial = 0; trial < kTrials; ++trial) {
          Rng rng(static_cast<uint64_t>(trial) * 104729 +
                  static_cast<uint64_t>(n) * 13 + static_cast<uint64_t>(shape));
          GeneratorOptions options;
          options.shape = shape;
          options.relation_count = n;
          options.rows_per_relation = 8;
          options.join_domain = 4;
          options.join_skew = 0.8;
          Database db = RandomDatabase(options, rng);
          JoinCache cache(&db);
          ExactSizeModel model(&cache);
          auto optimum = OptimizeDp(db.scheme(), db.scheme().full_mask(),
                                    model, {SearchSpace::kBushy, true});
          if (!optimum || optimum->cost == 0) continue;
          double base = static_cast<double>(optimum->cost);

          PlanResult greedy =
              OptimizeGreedy(db.scheme(), db.scheme().full_mask(), model);
          greedy_ratio.Add(static_cast<double>(greedy.cost) / base);

          Rng iter_rng = rng.Fork();
          PlanResult iterative = OptimizeIterative(
              db.scheme(), db.scheme().full_mask(), model, iter_rng);
          iterative_ratio.Add(static_cast<double>(iterative.cost) / base);

          AsiCostModel asi = AsiCostModel::FromDatabase(db);
          auto ikkbz =
              OptimizeIkkbz(db.scheme(), db.scheme().full_mask(), asi);
          if (ikkbz.ok()) {
            // Evaluate the IKKBZ order under the *true* τ measure.
            Strategy s = Strategy::LeftDeep(ikkbz->order);
            ikkbz_ratio.Add(static_cast<double>(TauCost(s, cache)) / base);
          }
        }
        if (greedy_ratio.count() == 0) continue;
        t.Row()
            .Cell(QueryShapeToString(shape))
            .Cell(n)
            .Cell(greedy_ratio.Median(), 3)
            .Cell(greedy_ratio.Max(), 3)
            .Cell(iterative_ratio.Median(), 3)
            .Cell(iterative_ratio.Max(), 3)
            .Cell(ikkbz_ratio.Median(), 3)
            .Cell(ikkbz_ratio.Max(), 3);
      }
    }
    t.Print();
    std::printf(
        "\nIKKBZ is exactly optimal for its ASI objective (an\n"
        "independence-model τ along tree edges); its gap above is the model\n"
        "error, not search error — the same distinction the paper draws by\n"
        "defining optimality on exact counts.\n");
  }

  PrintSection("I5b: the condition-aware policy in action");
  {
    ReportTable t({"workload", "chosen space", "plan tau",
                   "exact optimum", "optimal?"});
    // Keyed chain: superkeys declared → Theorem 3 branch.
    {
      Rng rng(12);
      KeyedGeneratorOptions options;
      options.relation_count = 5;
      options.rows_per_relation = 6;
      options.join_domain = 9;
      Database db = KeyedDatabase(options, rng);
      FdSet fds;
      for (int i = 0; i < db.size(); ++i) {
        for (const std::string& a : db.scheme().scheme(i)) {
          int occurrences = 0;
          for (int j = 0; j < db.size(); ++j) {
            if (db.scheme().scheme(j).Contains(a)) ++occurrences;
          }
          if (occurrences > 1) {
            fds.Add(FunctionalDependency{
                Schema{a}, db.scheme().scheme(i).Minus(Schema{a})});
          }
        }
      }
      JoinCache cache(&db);
      ExactSizeModel model(&cache);
      ConditionAwarePlan plan = OptimizeConditionAware(
          db.scheme(), db.scheme().full_mask(), fds, model);
      auto optimum = OptimizeDp(db.scheme(), db.scheme().full_mask(), model,
                                {SearchSpace::kBushy, true});
      t.Row()
          .Cell("keyed chain + key FDs")
          .Cell(SpaceJustificationToString(plan.justification))
          .Cell(plan.plan.cost)
          .Cell(optimum->cost)
          .Cell(plan.plan.cost == optimum->cost ? "yes" : "no");
    }
    // Mini order schema: FK FDs → Theorem 2 branch.
    {
      Rng rng(13);
      MiniTpch tpch = MakeMiniTpch({}, rng);
      JoinCache cache(&tpch.database);
      ExactSizeModel model(&cache);
      ConditionAwarePlan plan = OptimizeConditionAware(
          tpch.database.scheme(), tpch.database.scheme().full_mask(),
          tpch.fds, model);
      auto optimum =
          OptimizeDp(tpch.database.scheme(),
                     tpch.database.scheme().full_mask(), model,
                     {SearchSpace::kBushy, true});
      t.Row()
          .Cell("mini order schema + FK FDs")
          .Cell(SpaceJustificationToString(plan.justification))
          .Cell(plan.plan.cost)
          .Cell(optimum->cost)
          .Cell(plan.plan.cost == optimum->cost ? "yes" : "no");
    }
    // No FDs declared: full search.
    {
      Rng rng(14);
      GeneratorOptions options;
      options.shape = QueryShape::kCycle;
      options.relation_count = 5;
      options.rows_per_relation = 8;
      options.join_domain = 4;
      Database db = RandomDatabase(options, rng);
      JoinCache cache(&db);
      ExactSizeModel model(&cache);
      ConditionAwarePlan plan = OptimizeConditionAware(
          db.scheme(), db.scheme().full_mask(), FdSet{}, model);
      auto optimum = OptimizeDp(db.scheme(), db.scheme().full_mask(), model,
                                {SearchSpace::kBushy, true});
      t.Row()
          .Cell("random cycle, no FDs")
          .Cell(SpaceJustificationToString(plan.justification))
          .Cell(plan.plan.cost)
          .Cell(optimum->cost)
          .Cell(plan.plan.cost == optimum->cost ? "yes" : "no");
    }
    t.Print();
    std::printf(
        "\nThe policy is the paper §4 as engineering: semantic constraints\n"
        "license a smaller search space with no optimality loss.\n");
  }

  PrintSection("I5c: the 'hundreds of joins' regime (n = 30, polynomial only)");
  {
    // The introduction's motivation for studying large strategy spaces:
    // nontraditional systems "may have to evaluate expressions containing
    // hundreds of joins". Exact DP is hopeless there; the polynomial
    // algorithms still run. We optimize a 30-relation chain under the
    // independence model and then measure each plan's *exact* τ (cheap for
    // a single plan).
    Rng rng(31);
    GeneratorOptions options;
    options.shape = QueryShape::kChain;
    options.relation_count = 30;
    // Selective joins (domain > rows) keep the 30-way chain's exact sizes
    // materializable; a fan-out chain would have astronomically large
    // intermediates for *every* plan.
    options.rows_per_relation = 10;
    options.join_domain = 14;
    options.join_skew = 0.3;
    Database db = RandomDatabase(options, rng);
    JoinCache cache(&db);
    IndependenceSizeModel estimator(&db);

    ReportTable t({"algorithm", "exact tau of its plan"});
    PlanResult greedy =
        OptimizeGreedy(db.scheme(), db.scheme().full_mask(), estimator);
    t.Row().Cell("greedy (GOO)").Cell(TauCost(greedy.strategy, cache));
    PlanResult greedy_linear =
        OptimizeGreedyLinear(db.scheme(), db.scheme().full_mask(), estimator);
    t.Row().Cell("greedy linear").Cell(
        TauCost(greedy_linear.strategy, cache));
    Rng iter_rng = rng.Fork();
    PlanResult iterative = OptimizeIterative(
        db.scheme(), db.scheme().full_mask(), estimator, iter_rng);
    t.Row().Cell("iterative improvement").Cell(
        TauCost(iterative.strategy, cache));
    Rng sa_rng = rng.Fork();
    PlanResult annealed = OptimizeSimulatedAnnealing(
        db.scheme(), db.scheme().full_mask(), estimator, sa_rng);
    t.Row().Cell("simulated annealing").Cell(
        TauCost(annealed.strategy, cache));
    AsiCostModel asi = AsiCostModel::FromDatabase(db);
    auto ikkbz = OptimizeIkkbz(db.scheme(), db.scheme().full_mask(), asi);
    if (ikkbz.ok()) {
      t.Row().Cell("IKKBZ (ASI-optimal)").Cell(
          TauCost(Strategy::LeftDeep(ikkbz->order), cache));
    }
    t.Print();
    std::printf(
        "\nAt this size only polynomial search survives; the theorems tell\n"
        "us when such restricted searches are safe in principle, and IKKBZ\n"
        "shows what provable optimality under a *model* buys at scale.\n");
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
