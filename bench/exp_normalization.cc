// Experiment A4 — the full §4 pipeline made executable: start from a
// universal relation satisfying FDs, BCNF-decompose (lossless by
// construction), project the data, and observe that the resulting
// database (a) has no lossy joins per the chase, (b) satisfies C2, and
// (c) therefore enjoys Theorem 2: avoiding Cartesian products is safe.
// Joining the fragments reproduces the universal relation exactly.

#include <cstdio>

#include "common/rng.h"
#include "core/conditions.h"
#include "core/cost.h"
#include "fd/chase.h"
#include "fd/normalize.h"
#include "optimize/exhaustive.h"
#include "report/table.h"
#include "workload/decomposed.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  const int kTrials = 30;

  PrintSection("A4: universal relation -> BCNF fragments -> C2 -> Theorem 2");
  {
    int sampled = 0, bcnf = 0, lossless = 0, reassembles = 0, c2 = 0,
        theorem2_applicable = 0, theorem2_holds = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 333667 + 11);
      DecomposedOptions options;
      options.attribute_count = 4 + trial % 3;
      options.universal_rows = 16 + trial % 8;
      options.key_domain = 24;
      options.dependent_domain = 3 + trial % 4;
      DecomposedDatabase d = MakeDecomposedDatabase(options, rng);
      JoinCache cache(&d.database);
      if (cache.Tau(d.database.scheme().full_mask()) == 0) continue;
      ++sampled;
      if (IsBcnf(d.database.scheme(), d.fds)) ++bcnf;
      if (HasNoLossyJoins(d.database.scheme(), d.fds)) ++lossless;
      if (d.database.Evaluate() == d.universal) ++reassembles;
      ConditionsSummary conditions = CheckAllConditions(cache);
      if (conditions.c2.satisfied) ++c2;
      if (conditions.c1.satisfied && conditions.c2.satisfied) {
        ++theorem2_applicable;
        auto all = OptimizeExhaustive(cache, d.database.scheme().full_mask(),
                                      StrategySpace::kAll);
        auto nocp = OptimizeExhaustive(cache, d.database.scheme().full_mask(),
                                       StrategySpace::kNoCartesian);
        if (nocp.has_value() && nocp->cost == all->cost) ++theorem2_holds;
      }
    }
    ReportTable t({"quantity", "expected", "measured"});
    t.Row().Cell("databases (non-empty join)").Cell("-").Cell(sampled);
    t.Row().Cell("decomposition is BCNF").Cell(sampled).Cell(bcnf);
    t.Row()
        .Cell("chase: no lossy joins (Section 4 hypothesis)")
        .Cell(sampled)
        .Cell(lossless);
    t.Row()
        .Cell("join of fragments reproduces the universal relation")
        .Cell(sampled)
        .Cell(reassembles);
    t.Row().Cell("C2 holds (Section 4 conclusion)").Cell(sampled).Cell(c2);
    t.Row()
        .Cell("Theorem 2 applicable (C1 also holds)")
        .Cell("-")
        .Cell(theorem2_applicable);
    t.Row()
        .Cell("Theorem 2 conclusion holds there")
        .Cell(theorem2_applicable)
        .Cell(theorem2_holds);
    t.Print();
    std::printf(
        "\nThis is the paper's §4 argument run end-to-end on data: lossless\n"
        "FD-based design ⇒ C2 ⇒ (with C1) optimizers may safely skip\n"
        "Cartesian products.\n");
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
