// Experiment I1 — the strategy-space arithmetic of the paper's
// introduction ("3 orderings of the form (R1⋈R2)⋈(R3⋈R4) and 12 orderings
// of the form ((R1⋈R2)⋈R3)⋈R4"), extended to the full table optimizer
// papers sweep: |all| = (2n−3)!!, |linear| = n!/2, and the no-CP counts by
// query-graph shape, which are what the avoid-products heuristic actually
// buys.

#include <cstdio>

#include "enumerate/counting.h"
#include "optimize/dpccp.h"
#include "enumerate/strategy_enumerator.h"
#include "report/table.h"
#include "scheme/query_graph.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  PrintSection("I1a: the introduction's n = 4 count (paper vs measured)");
  {
    DatabaseScheme scheme = MakeShapedScheme(QueryShape::kClique, 4);
    uint64_t all =
        CountStrategies(scheme, scheme.full_mask(), StrategySpace::kAll);
    uint64_t linear =
        CountStrategies(scheme, scheme.full_mask(), StrategySpace::kLinear);
    ReportTable t({"quantity", "paper", "measured"});
    t.Row().Cell("total strategies, 4 relations").Cell(15).Cell(all);
    t.Row().Cell("linear ((R1 R2) R3) R4 form").Cell(12).Cell(linear);
    t.Row().Cell("bushy (R1 R2)(R3 R4) form").Cell(3).Cell(all - linear);
    t.Print();
  }

  PrintSection("I1b: strategy-space sizes vs closed forms");
  {
    ReportTable t({"n", "all (measured)", "(2n-3)!!", "linear (measured)",
                   "n!/2"});
    for (int n = 2; n <= 9; ++n) {
      DatabaseScheme scheme = MakeShapedScheme(QueryShape::kClique, n);
      t.Row()
          .Cell(n)
          .Cell(CountStrategies(scheme, scheme.full_mask(), StrategySpace::kAll))
          .Cell(CountAllTrees(n))
          .Cell(CountStrategies(scheme, scheme.full_mask(),
                                StrategySpace::kLinear))
          .Cell(CountLinearTrees(n));
    }
    t.Print();
  }

  PrintSection("I1c: what avoiding Cartesian products buys, by query shape");
  {
    ReportTable t({"shape", "n", "all", "no-CP", "linear", "linear+no-CP"});
    for (QueryShape shape : {QueryShape::kChain, QueryShape::kStar,
                             QueryShape::kCycle, QueryShape::kClique}) {
      for (int n : {4, 6, 8, 10}) {
        if (shape == QueryShape::kCycle && n < 3) continue;
        DatabaseScheme scheme = MakeShapedScheme(shape, n);
        RelMask full = scheme.full_mask();
        t.Row()
            .Cell(QueryShapeToString(shape))
            .Cell(n)
            .Cell(CountStrategies(scheme, full, StrategySpace::kAll))
            .Cell(CountStrategies(scheme, full, StrategySpace::kNoCartesian))
            .Cell(CountStrategies(scheme, full, StrategySpace::kLinear))
            .Cell(CountStrategies(scheme, full,
                                  StrategySpace::kLinearNoCartesian));
      }
    }
    t.Print();
    std::printf(
        "\nChains collapse to Catalan-many CP-free trees; stars to linear\n"
        "orders through the hub; cliques get no pruning at all — the\n"
        "heuristics' value depends entirely on the query graph, which is\n"
        "why the paper asks when they are *safe* rather than how much they\n"
        "prune.\n");
  }

  PrintSection("I1d: csg-cmp pairs — the work of product-free DP, by shape");
  {
    ReportTable t({"shape", "n", "csg-cmp pairs", "subset splits (3^n scale)"});
    for (QueryShape shape : {QueryShape::kChain, QueryShape::kStar,
                             QueryShape::kCycle, QueryShape::kClique}) {
      for (int n : {4, 8, 12}) {
        DatabaseScheme scheme = MakeShapedScheme(shape, n);
        // Splits DPsub would examine: sum over subsets of 2^{|S|-1}-1.
        uint64_t splits = 0;
        for (int k = 2; k <= n; ++k) {
          uint64_t binom = 1;
          for (int j = 0; j < k; ++j) binom = binom * (n - j) / (j + 1);
          splits += binom * ((uint64_t{1} << (k - 1)) - 1);
        }
        t.Row()
            .Cell(QueryShapeToString(shape))
            .Cell(n)
            .Cell(CountCsgCmpPairs(scheme, scheme.full_mask()))
            .Cell(splits);
      }
    }
    t.Print();
    std::printf(
        "\nProduct-free DP touches only realizable pairs: cubic on chains\n"
        "versus the exponential subset-split count — the engineering payoff\n"
        "of knowing (via the paper) that skipping products is safe.\n");
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
