// Experiment E1'/E5' — the paper's examples as points on parameter sweeps:
// where exactly do the crossovers fall?
//
//  * Example 1 family: τ(R3) = τ(R4) = k. The Cartesian-product plan S4
//    beats the best CP-avoiding plan S3 iff k² − 8k + 10 > 0 (k ≤ 1 or
//    k ≥ 7); the paper's instance is k = 7, the smallest integer past the
//    crossover.
//  * Example 5 family: s physics majors enrolled in Math200. A linear
//    plan is optimal at s = 0; from s = 1 on (the paper's instance) the
//    unique optimum is bushy and the best-linear gap grows as s.

#include <cstdio>

#include "core/conditions.h"
#include "core/cost.h"
#include "core/strategy_parser.h"
#include "core/properties.h"
#include "optimize/exhaustive.h"
#include "report/table.h"
#include "workload/example_families.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  PrintSection("E1': Example 1 family — tau(R3) = tau(R4) = k");
  {
    ReportTable t({"k", "S3 measured", "S3 = 11k^2+10", "S4 measured",
                   "S4 = 10k^2+8k", "optimum uses CP", "prediction"});
    for (int k = 1; k <= 12; ++k) {
      Database db = Example1Family(k);
      JoinCache cache(&db);
      Strategy s3_strategy = ParseStrategyOrDie(db, "((R1 R2) (R3 R4))");
      Strategy s4_strategy = ParseStrategyOrDie(db, "((R1 R3) (R2 R4))");
      auto avoid = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                      StrategySpace::kAvoidsCartesian);
      auto all = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                    StrategySpace::kAll);
      uint64_t kk = static_cast<uint64_t>(k);
      bool predicted_cp_wins = kk * kk + 10 > 8 * kk;
      bool measured_cp_wins = all->cost < avoid->cost;
      t.Row()
          .Cell(k)
          .Cell(TauCost(s3_strategy, cache))
          .Cell(11 * kk * kk + 10)
          .Cell(TauCost(s4_strategy, cache))
          .Cell(10 * kk * kk + 8 * kk)
          .Cell(measured_cp_wins ? "yes" : "no")
          .Cell(predicted_cp_wins ? "yes" : "no");
    }
    t.Print();
    std::printf(
        "\nThe 'optimum uses CP' column flips exactly where the closed form\n"
        "predicts (k <= 1 and k >= 7); the paper's Example 1 sits at k = 7.\n"
        "(C1 itself holds exactly from k = 3 on — the instance satisfies C1\n"
        "while its optimum still uses products, the example's entire point.)\n");
  }

  PrintSection("E5': Example 5 family — s Math200-enrolled physics majors");
  {
    ReportTable t({"s", "global optimum", "bushy plan = 8+3s", "best linear", "min(8+4s, 6+6s)",
                   "optimum is linear"});
    for (int s = 0; s <= 8; ++s) {
      Database db = Example5Family(s);
      JoinCache cache(&db);
      auto all = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                    StrategySpace::kAll);
      auto linear = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                       StrategySpace::kLinear);
      uint64_t ss = static_cast<uint64_t>(s);
      t.Row()
          .Cell(s)
          .Cell(all->cost)
          .Cell(8 + 3 * ss)
          .Cell(linear->cost)
          .Cell(std::min(8 + 4 * ss, 6 + 6 * ss))
          .Cell(linear->cost == all->cost ? "yes" : "no");
    }
    t.Print();
    std::printf(
        "\nCrossover at s = 1, the paper's instance: linear optimality is\n"
        "lost the moment a second access path through the data matters, and\n"
        "the linear penalty then grows linearly — C3's failure has a\n"
        "*quantitative* price, not just a counterexample. s = 1 is also\n"
        "the largest s at which C2 still holds, so the published instance\n"
        "is extremal in two directions at once.\n");
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
