// M2 — google-benchmark microbenchmarks for the optimizer substrate:
// exact-cost DP (bushy/linear), the avoid-CP optimizer, greedy, iterative
// improvement, exhaustive enumeration, condition checking, and the
// CostEngine's counting τ fast path against forced materialization, as
// the query grows.
//
// Unless the caller passes its own --benchmark_out, results are also
// written to BENCH_optimizer.json in the working directory so runs leave
// a machine-readable artifact.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_main.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/conditions.h"
#include "enumerate/strategy_enumerator.h"
#include "enumerate/subsets.h"
#include "optimize/dp.h"
#include "optimize/dpccp.h"
#include "optimize/exhaustive.h"
#include "optimize/greedy.h"
#include "optimize/iterative.h"
#include "workload/generator.h"

namespace taujoin {
namespace {

Database MakeDb(int n, uint64_t seed) {
  Rng rng(seed);
  GeneratorOptions options;
  options.shape = QueryShape::kChain;
  options.relation_count = n;
  options.rows_per_relation = 8;
  options.join_domain = 4;
  return RandomDatabase(options, rng);
}

Database MakeCliqueDb(int n, uint64_t seed) {
  Rng rng(seed);
  GeneratorOptions options;
  options.shape = QueryShape::kClique;
  options.relation_count = n;
  options.rows_per_relation = 8;
  options.join_domain = 4;
  return RandomDatabase(options, rng);
}

void BM_DpBushy(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)), 1);
  CostEngine engine(&db);
  ExactSizeModel model(&engine);
  engine.Tau(db.scheme().full_mask());  // pre-warm the memo table
  for (auto _ : state) {
    auto plan = OptimizeDp(db.scheme(), db.scheme().full_mask(), model,
                           {SearchSpace::kBushy, true});
    benchmark::DoNotOptimize(plan->cost);
  }
}
BENCHMARK(BM_DpBushy)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

void BM_DpLinear(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)), 1);
  CostEngine engine(&db);
  ExactSizeModel model(&engine);
  engine.Tau(db.scheme().full_mask());
  for (auto _ : state) {
    auto plan = OptimizeDp(db.scheme(), db.scheme().full_mask(), model,
                           {SearchSpace::kLinear, true});
    benchmark::DoNotOptimize(plan->cost);
  }
}
BENCHMARK(BM_DpLinear)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

void BM_DpNoCartesian(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)), 1);
  CostEngine engine(&db);
  ExactSizeModel model(&engine);
  engine.Tau(db.scheme().full_mask());
  for (auto _ : state) {
    auto plan = OptimizeDp(db.scheme(), db.scheme().full_mask(), model,
                           {SearchSpace::kBushy, false});
    benchmark::DoNotOptimize(plan->cost);
  }
}
BENCHMARK(BM_DpNoCartesian)->Arg(6)->Arg(8)->Arg(10)->Arg(12);


void BM_DpCcp(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)), 1);
  CostEngine engine(&db);
  ExactSizeModel model(&engine);
  engine.Tau(db.scheme().full_mask());
  for (auto _ : state) {
    auto plan = OptimizeDpCcp(db.scheme(), db.scheme().full_mask(), model);
    benchmark::DoNotOptimize(plan->cost);
  }
}
BENCHMARK(BM_DpCcp)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

void BM_Greedy(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)), 1);
  CostEngine engine(&db);
  ExactSizeModel model(&engine);
  engine.Tau(db.scheme().full_mask());
  for (auto _ : state) {
    PlanResult plan =
        OptimizeGreedy(db.scheme(), db.scheme().full_mask(), model);
    benchmark::DoNotOptimize(plan.cost);
  }
}
BENCHMARK(BM_Greedy)->Arg(6)->Arg(10)->Arg(14);

void BM_IterativeImprovement(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)), 1);
  CostEngine engine(&db);
  ExactSizeModel model(&engine);
  engine.Tau(db.scheme().full_mask());
  Rng rng(9);
  for (auto _ : state) {
    PlanResult plan =
        OptimizeIterative(db.scheme(), db.scheme().full_mask(), model, rng);
    benchmark::DoNotOptimize(plan.cost);
  }
}
BENCHMARK(BM_IterativeImprovement)->Arg(6)->Arg(10)->Arg(14);

void BM_ExhaustiveEnumeration(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)), 1);
  CostEngine engine(&db);
  engine.Tau(db.scheme().full_mask());
  for (auto _ : state) {
    auto plan = OptimizeExhaustive(engine, db.scheme().full_mask(),
                                   StrategySpace::kAll);
    benchmark::DoNotOptimize(plan->cost);
  }
}
BENCHMARK(BM_ExhaustiveEnumeration)->Arg(5)->Arg(6)->Arg(7)->Arg(8);

// Exhaustive τ-costing of every connected subset of an n-relation chain,
// cold engine each iteration. The counting variant resolves each subset's
// τ by counting the final join (the subset's own output is never built);
// the materializing variant forces ConnectedState() first — what every
// caller paid before the counting fast path existed.
void BM_ExhaustiveTauCounting(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)), 1);
  std::vector<RelMask> subsets =
      ConnectedSubsets(db.scheme(), db.scheme().full_mask());
  for (auto _ : state) {
    CostEngine engine(&db);
    uint64_t total = 0;
    for (RelMask mask : subsets) total += engine.Tau(mask);
    benchmark::DoNotOptimize(total);
  }
  state.counters["subsets"] = static_cast<double>(subsets.size());
}
BENCHMARK(BM_ExhaustiveTauCounting)->Arg(8)->Arg(10);

void BM_ExhaustiveTauMaterializing(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)), 1);
  std::vector<RelMask> subsets =
      ConnectedSubsets(db.scheme(), db.scheme().full_mask());
  for (auto _ : state) {
    CostEngine engine(&db);
    uint64_t total = 0;
    for (RelMask mask : subsets) total += engine.ConnectedState(mask).Tau();
    benchmark::DoNotOptimize(total);
  }
  state.counters["subsets"] = static_cast<double>(subsets.size());
}
BENCHMARK(BM_ExhaustiveTauMaterializing)->Arg(8)->Arg(10);

// ---- Parallel-vs-serial sweeps ---------------------------------------
//
// Second benchmark argument is the thread count; each benchmark owns a
// private pool sized threads-1 (the caller participates in ParallelFor),
// so /N/1 is the serial baseline the parallel rows are judged against.
// Clique schemes give the DP levels and csg-cmp layers enough width for
// parallelism to bite; chains stay too narrow past the τ memoization.

void BM_DpBushyParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(1));
  Database db = MakeCliqueDb(static_cast<int>(state.range(0)), 1);
  CostEngine engine(&db);
  ExactSizeModel model(&engine);
  engine.Tau(db.scheme().full_mask());
  ThreadPool pool(threads - 1);
  for (auto _ : state) {
    auto plan =
        OptimizeDp(db.scheme(), db.scheme().full_mask(), model,
                   {SearchSpace::kBushy, true, ParallelOptions{threads, &pool}});
    benchmark::DoNotOptimize(plan->cost);
  }
}
BENCHMARK(BM_DpBushyParallel)
    ->Args({12, 1})
    ->Args({12, 2})
    ->Args({12, 4})
    ->ArgNames({"n", "threads"});

void BM_DpCcpParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(1));
  Database db = MakeCliqueDb(static_cast<int>(state.range(0)), 1);
  CostEngine engine(&db);
  ExactSizeModel model(&engine);
  engine.Tau(db.scheme().full_mask());
  ThreadPool pool(threads - 1);
  for (auto _ : state) {
    auto plan = OptimizeDpCcp(db.scheme(), db.scheme().full_mask(), model,
                              ParallelOptions{threads, &pool});
    benchmark::DoNotOptimize(plan->cost);
  }
}
BENCHMARK(BM_DpCcpParallel)
    ->Args({11, 1})
    ->Args({11, 2})
    ->Args({11, 4})
    ->ArgNames({"n", "threads"});

void BM_ExhaustiveParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(1));
  Database db = MakeDb(static_cast<int>(state.range(0)), 1);
  CostEngine engine(&db);
  engine.Tau(db.scheme().full_mask());
  ThreadPool pool(threads - 1);
  for (auto _ : state) {
    auto plan = OptimizeExhaustive(engine, db.scheme().full_mask(),
                                   StrategySpace::kAll,
                                   ParallelOptions{threads, &pool});
    benchmark::DoNotOptimize(plan->cost);
  }
}
BENCHMARK(BM_ExhaustiveParallel)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->ArgNames({"n", "threads"});

// τ-costing every connected subset of a chain with a cold engine per
// iteration, subsets dispatched over the pool: the CostEngine's sharded
// memo tables are the contended resource this benchmark stresses.
void BM_ExhaustiveTauCountingParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(1));
  Database db = MakeDb(static_cast<int>(state.range(0)), 1);
  std::vector<RelMask> subsets =
      ConnectedSubsets(db.scheme(), db.scheme().full_mask());
  ThreadPool pool(threads - 1);
  for (auto _ : state) {
    CostEngine engine(&db);
    std::vector<uint64_t> taus(subsets.size());
    pool.ParallelFor(
        static_cast<int64_t>(subsets.size()),
        [&](int64_t i) {
          taus[static_cast<size_t>(i)] = engine.Tau(subsets[static_cast<size_t>(i)]);
        },
        threads);
    uint64_t total = 0;
    for (uint64_t t : taus) total += t;
    benchmark::DoNotOptimize(total);
  }
  state.counters["subsets"] = static_cast<double>(subsets.size());
}
BENCHMARK(BM_ExhaustiveTauCountingParallel)
    ->Args({10, 1})
    ->Args({10, 2})
    ->Args({10, 4})
    ->ArgNames({"n", "threads"});

void BM_IndependenceEstimator(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    IndependenceSizeModel model(&db);
    auto plan = OptimizeDp(db.scheme(), db.scheme().full_mask(), model,
                           {SearchSpace::kBushy, true});
    benchmark::DoNotOptimize(plan->cost);
  }
}
BENCHMARK(BM_IndependenceEstimator)->Arg(8)->Arg(12);

void BM_CheckConditions(benchmark::State& state) {
  Database db = MakeDb(static_cast<int>(state.range(0)), 1);
  CostEngine engine(&db);
  engine.Tau(db.scheme().full_mask());
  for (auto _ : state) {
    ConditionsSummary summary = CheckAllConditions(engine);
    benchmark::DoNotOptimize(summary.c1.satisfied);
  }
}
BENCHMARK(BM_CheckConditions)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
}  // namespace taujoin

int main(int argc, char** argv) {
  return taujoin::bench::RunBenchmarks(argc, argv, "BENCH_optimizer.json");
}
