// Experiment T1–T3 — randomized machine-verification of Theorems 1–3 on
// condition-satisfying databases, plus the necessity side: how often each
// theorem's conclusion *fails* once its condition is dropped.
//
// Trials are independent (one database + one CostEngine each), so every
// section fans out over a ParallelSweep; per-trial seeds are fixed
// functions of the trial index, making the output identical for any
// thread count.

#include <cstdio>

#include "common/rng.h"
#include "core/conditions.h"
#include "core/cost.h"
#include "core/properties.h"
#include "enumerate/parallel_sweep.h"
#include "optimize/exhaustive.h"
#include "report/table.h"
#include "workload/generator.h"
#include "workload/keyed_generator.h"
#include "workload/star_schema.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

namespace {

struct Tally {
  int sampled = 0;      ///< databases satisfying the theorem's hypothesis
  int conclusion = 0;   ///< ... where the conclusion holds
};

bool NonEmpty(CostEngine& engine, const Database& db) {
  return engine.Tau(db.scheme().full_mask()) > 0;
}

// Theorem 1 conclusion: every τ-optimum linear strategy avoids CPs.
bool Theorem1Holds(CostEngine& engine, const Database& db) {
  for (const Strategy& s :
       AllOptima(engine, db.scheme().full_mask(), StrategySpace::kLinear)) {
    if (UsesCartesianProducts(s, db.scheme())) return false;
  }
  return true;
}

// Theorem 2 conclusion: some τ-optimum strategy uses no CPs.
bool Theorem2Holds(CostEngine& engine, const Database& db) {
  auto all = OptimizeExhaustive(engine, db.scheme().full_mask(),
                                StrategySpace::kAll);
  auto nocp = OptimizeExhaustive(engine, db.scheme().full_mask(),
                                 StrategySpace::kNoCartesian);
  return nocp.has_value() && nocp->cost == all->cost;
}

// Theorem 3 conclusion: some τ-optimum strategy is linear and CP-free.
bool Theorem3Holds(CostEngine& engine, const Database& db) {
  auto all = OptimizeExhaustive(engine, db.scheme().full_mask(),
                                StrategySpace::kAll);
  auto lin = OptimizeExhaustive(engine, db.scheme().full_mask(),
                                StrategySpace::kLinearNoCartesian);
  return lin.has_value() && lin->cost == all->cost;
}

}  // namespace

int main() {
  const int kTrials = 60;

  PrintSection("T1-T3: conclusions on condition-satisfying databases");
  {
    // Per-trial verdicts, computed in parallel and tallied in trial order.
    struct TrialVerdict {
      bool sampled_t1 = false, holds_t1 = false;
      bool sampled_t2 = false, holds_t2 = false;
      bool sampled_t3 = false, holds_t3 = false;
    };
    std::vector<TrialVerdict> verdicts =
        ParallelSweep(kTrials, [&](int trial) {
          TrialVerdict v;
          Rng rng(static_cast<uint64_t>(trial) * 6364136223846793005ULL + 1);
          KeyedGeneratorOptions options;
          options.shape =
              trial % 2 == 0 ? QueryShape::kChain : QueryShape::kStar;
          options.relation_count = 4 + trial % 2;
          options.rows_per_relation = 3 + trial % 4;
          options.join_domain = options.rows_per_relation + 1 + trial % 3;
          Database db = KeyedDatabase(options, rng);
          CostEngine engine(&db);
          if (!NonEmpty(engine, db)) return v;
          ConditionsSummary conditions = CheckAllConditions(engine);
          if (conditions.c1_strict.satisfied) {
            v.sampled_t1 = true;
            v.holds_t1 = Theorem1Holds(engine, db);
          }
          if (conditions.c1.satisfied && conditions.c2.satisfied) {
            v.sampled_t2 = true;
            v.holds_t2 = Theorem2Holds(engine, db);
          }
          if (conditions.c3.satisfied) {
            v.sampled_t3 = true;
            v.holds_t3 = Theorem3Holds(engine, db);
          }
          return v;
        });
    Tally t1, t2, t3;
    for (const TrialVerdict& v : verdicts) {
      t1.sampled += v.sampled_t1;
      t1.conclusion += v.holds_t1;
      t2.sampled += v.sampled_t2;
      t2.conclusion += v.holds_t2;
      t3.sampled += v.sampled_t3;
      t3.conclusion += v.holds_t3;
    }

    // Star schemas exercise Theorem 2 beyond the keyed family (C2 via
    // lossless FK joins, C3 typically failing).
    struct StarVerdict {
      bool sampled = false, holds = false;
    };
    std::vector<StarVerdict> star_verdicts =
        ParallelSweep(kTrials / 2, [&](int trial) {
          StarVerdict v;
          Rng rng(static_cast<uint64_t>(trial) * 2862933555777941757ULL + 5);
          StarSchemaOptions options;
          options.dimension_count = 3;
          options.fact_rows = 8 + trial % 8;
          options.dimension_rows = 4 + trial % 4;
          options.dimension_domain = options.dimension_rows + 2;
          StarSchemaDatabase star = MakeStarSchema(options, rng);
          CostEngine engine(&star.database);
          if (!NonEmpty(engine, star.database)) return v;
          ConditionsSummary conditions = CheckAllConditions(engine);
          if (conditions.c1.satisfied && conditions.c2.satisfied) {
            v.sampled = true;
            v.holds = Theorem2Holds(engine, star.database);
          }
          return v;
        });
    Tally t2_star;
    for (const StarVerdict& v : star_verdicts) {
      t2_star.sampled += v.sampled;
      t2_star.conclusion += v.holds;
    }

    ReportTable table({"theorem", "hypothesis", "workload", "databases",
                       "conclusion holds", "verdict"});
    table.Row()
        .Cell("Theorem 1: optimal linear avoids CP")
        .Cell("C1'")
        .Cell("keyed")
        .Cell(t1.sampled)
        .Cell(t1.conclusion)
        .Cell(t1.sampled == t1.conclusion ? "PASS" : "FAIL");
    table.Row()
        .Cell("Theorem 2: some optimum CP-free")
        .Cell("C1+C2")
        .Cell("keyed")
        .Cell(t2.sampled)
        .Cell(t2.conclusion)
        .Cell(t2.sampled == t2.conclusion ? "PASS" : "FAIL");
    table.Row()
        .Cell("Theorem 2: some optimum CP-free")
        .Cell("C1+C2")
        .Cell("star-schema")
        .Cell(t2_star.sampled)
        .Cell(t2_star.conclusion)
        .Cell(t2_star.sampled == t2_star.conclusion ? "PASS" : "FAIL");
    table.Row()
        .Cell("Theorem 3: some optimum linear+CP-free")
        .Cell("C3")
        .Cell("keyed")
        .Cell(t3.sampled)
        .Cell(t3.conclusion)
        .Cell(t3.sampled == t3.conclusion ? "PASS" : "FAIL");
    table.Print();
  }

  PrintSection("Necessity: conclusion failure rates once conditions are dropped");
  {
    // Random (skewed) databases mostly violate the conditions; measure how
    // often each conclusion then fails — nonzero rates demonstrate the
    // conditions carry real weight (the paper's Examples 3-5 are specific
    // witnesses of the same phenomenon).
    struct NecessityVerdict {
      bool sampled = false;
      bool c1s = false, c12 = false, c3 = false;
      bool t1_fail = false, t2_fail = false, t3_fail = false;
    };
    std::vector<NecessityVerdict> verdicts =
        ParallelSweep(kTrials, [&](int trial) {
          NecessityVerdict v;
          Rng rng(static_cast<uint64_t>(trial) * 88172645463325252ULL + 9);
          GeneratorOptions options;
          options.shape = static_cast<QueryShape>(trial % 4);
          options.relation_count = 4 + trial % 2;
          options.rows_per_relation = 6;
          options.join_domain = 3;
          options.join_skew = trial % 3 == 0 ? 1.0 : 0.0;
          Database db = RandomDatabase(options, rng);
          CostEngine engine(&db);
          if (!NonEmpty(engine, db)) return v;
          v.sampled = true;
          ConditionsSummary conditions = CheckAllConditions(engine);
          v.c1s = conditions.c1_strict.satisfied;
          if (!v.c1s) v.t1_fail = !Theorem1Holds(engine, db);
          v.c12 = conditions.c1.satisfied && conditions.c2.satisfied;
          if (!v.c12) v.t2_fail = !Theorem2Holds(engine, db);
          v.c3 = conditions.c3.satisfied;
          if (!v.c3) v.t3_fail = !Theorem3Holds(engine, db);
          return v;
        });
    int sampled = 0;
    int t1_fail = 0, t2_fail = 0, t3_fail = 0;
    int c1s_holds = 0, c12_holds = 0, c3_holds = 0;
    for (const NecessityVerdict& v : verdicts) {
      sampled += v.sampled;
      c1s_holds += v.c1s;
      c12_holds += v.c12;
      c3_holds += v.c3;
      t1_fail += v.t1_fail;
      t2_fail += v.t2_fail;
      t3_fail += v.t3_fail;
    }
    ReportTable necessity_table({"conclusion", "condition held",
                                 "condition dropped", "conclusion failed"});
    ReportTable& table = necessity_table;
    table.Row()
        .Cell("optimal linear avoids CP")
        .Cell(c1s_holds)
        .Cell(sampled - c1s_holds)
        .Cell(t1_fail);
    table.Row()
        .Cell("some optimum CP-free")
        .Cell(c12_holds)
        .Cell(sampled - c12_holds)
        .Cell(t2_fail);
    table.Row()
        .Cell("some optimum linear+CP-free")
        .Cell(c3_holds)
        .Cell(sampled - c3_holds)
        .Cell(t3_fail);
    table.Print();
    std::printf(
        "\n(Nonzero failure counts on the right are expected: they are what\n"
        "the paper's Examples 3-5 demonstrate must be possible.)\n");
  }

  PrintSection("Scale-up: Theorems 2/3 via DP on larger keyed databases");
  {
    // Beyond enumeration reach (the strategy space at n = 10 has 3.4e7
    // trees), the subset DP still certifies the theorems: on C3-satisfying
    // keyed databases the linear/no-CP DP matches the unrestricted DP.
    ReportTable table({"n", "databases (C3 holds)", "DP(all) == DP(linear,no-CP)",
                       "verdict"});
    for (int n : {8, 9, 10}) {
      struct ScaleVerdict {
        bool sampled = false, equal = false;
      };
      std::vector<ScaleVerdict> verdicts =
          ParallelSweep(12, [&](int trial) {
            ScaleVerdict v;
            Rng rng(static_cast<uint64_t>(trial) * 524287 +
                    static_cast<uint64_t>(n));
            KeyedGeneratorOptions options;
            options.shape =
                trial % 2 == 0 ? QueryShape::kChain : QueryShape::kStar;
            options.relation_count = n;
            // High per-edge match rate (7/8) so the 10-way join stays
            // non-empty often enough to sample.
            options.rows_per_relation = 7;
            options.join_domain = 8;
            Database db = KeyedDatabase(options, rng);
            CostEngine engine(&db);
            if (engine.Tau(db.scheme().full_mask()) == 0) return v;
            if (!CheckC3(engine).satisfied) return v;
            v.sampled = true;
            auto all = OptimizeDp(engine, db.scheme().full_mask(),
                                  {SearchSpace::kBushy, true});
            auto restricted = OptimizeDp(engine, db.scheme().full_mask(),
                                         {SearchSpace::kLinear, false});
            v.equal = all && restricted && all->cost == restricted->cost;
            return v;
          });
      int sampled = 0, equal = 0;
      for (const ScaleVerdict& v : verdicts) {
        sampled += v.sampled;
        equal += v.equal;
      }
      table.Row()
          .Cell(n)
          .Cell(sampled)
          .Cell(equal)
          .Cell(sampled == equal ? "PASS" : "FAIL");
    }
    table.Print();
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
