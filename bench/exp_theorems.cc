// Experiment T1–T3 — randomized machine-verification of Theorems 1–3 on
// condition-satisfying databases, plus the necessity side: how often each
// theorem's conclusion *fails* once its condition is dropped.

#include <cstdio>

#include "common/rng.h"
#include "core/conditions.h"
#include "core/cost.h"
#include "core/properties.h"
#include "optimize/exhaustive.h"
#include "report/table.h"
#include "workload/generator.h"
#include "workload/keyed_generator.h"
#include "workload/star_schema.h"

using namespace taujoin;  // NOLINT

namespace {

struct Tally {
  int sampled = 0;      ///< databases satisfying the theorem's hypothesis
  int conclusion = 0;   ///< ... where the conclusion holds
};

bool NonEmpty(JoinCache& cache, const Database& db) {
  return cache.Tau(db.scheme().full_mask()) > 0;
}

// Theorem 1 conclusion: every τ-optimum linear strategy avoids CPs.
bool Theorem1Holds(JoinCache& cache, const Database& db) {
  for (const Strategy& s :
       AllOptima(cache, db.scheme().full_mask(), StrategySpace::kLinear)) {
    if (UsesCartesianProducts(s, db.scheme())) return false;
  }
  return true;
}

// Theorem 2 conclusion: some τ-optimum strategy uses no CPs.
bool Theorem2Holds(JoinCache& cache, const Database& db) {
  auto all = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                StrategySpace::kAll);
  auto nocp = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                 StrategySpace::kNoCartesian);
  return nocp.has_value() && nocp->cost == all->cost;
}

// Theorem 3 conclusion: some τ-optimum strategy is linear and CP-free.
bool Theorem3Holds(JoinCache& cache, const Database& db) {
  auto all = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                StrategySpace::kAll);
  auto lin = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                StrategySpace::kLinearNoCartesian);
  return lin.has_value() && lin->cost == all->cost;
}

}  // namespace

int main() {
  const int kTrials = 60;

  PrintSection("T1-T3: conclusions on condition-satisfying databases");
  {
    Tally t1, t2, t3;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 6364136223846793005ULL + 1);
      KeyedGeneratorOptions options;
      options.shape = trial % 2 == 0 ? QueryShape::kChain : QueryShape::kStar;
      options.relation_count = 4 + trial % 2;
      options.rows_per_relation = 3 + trial % 4;
      options.join_domain = options.rows_per_relation + 1 + trial % 3;
      Database db = KeyedDatabase(options, rng);
      JoinCache cache(&db);
      if (!NonEmpty(cache, db)) continue;
      ConditionsSummary conditions = CheckAllConditions(cache);
      if (conditions.c1_strict.satisfied) {
        ++t1.sampled;
        if (Theorem1Holds(cache, db)) ++t1.conclusion;
      }
      if (conditions.c1.satisfied && conditions.c2.satisfied) {
        ++t2.sampled;
        if (Theorem2Holds(cache, db)) ++t2.conclusion;
      }
      if (conditions.c3.satisfied) {
        ++t3.sampled;
        if (Theorem3Holds(cache, db)) ++t3.conclusion;
      }
    }
    // Star schemas exercise Theorem 2 beyond the keyed family (C2 via
    // lossless FK joins, C3 typically failing).
    Tally t2_star;
    for (int trial = 0; trial < kTrials / 2; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 2862933555777941757ULL + 5);
      StarSchemaOptions options;
      options.dimension_count = 3;
      options.fact_rows = 8 + trial % 8;
      options.dimension_rows = 4 + trial % 4;
      options.dimension_domain = options.dimension_rows + 2;
      StarSchemaDatabase star = MakeStarSchema(options, rng);
      JoinCache cache(&star.database);
      if (!NonEmpty(cache, star.database)) continue;
      ConditionsSummary conditions = CheckAllConditions(cache);
      if (conditions.c1.satisfied && conditions.c2.satisfied) {
        ++t2_star.sampled;
        if (Theorem2Holds(cache, star.database)) ++t2_star.conclusion;
      }
    }
    ReportTable table({"theorem", "hypothesis", "workload", "databases",
                       "conclusion holds", "verdict"});
    table.Row()
        .Cell("Theorem 1: optimal linear avoids CP")
        .Cell("C1'")
        .Cell("keyed")
        .Cell(t1.sampled)
        .Cell(t1.conclusion)
        .Cell(t1.sampled == t1.conclusion ? "PASS" : "FAIL");
    table.Row()
        .Cell("Theorem 2: some optimum CP-free")
        .Cell("C1+C2")
        .Cell("keyed")
        .Cell(t2.sampled)
        .Cell(t2.conclusion)
        .Cell(t2.sampled == t2.conclusion ? "PASS" : "FAIL");
    table.Row()
        .Cell("Theorem 2: some optimum CP-free")
        .Cell("C1+C2")
        .Cell("star-schema")
        .Cell(t2_star.sampled)
        .Cell(t2_star.conclusion)
        .Cell(t2_star.sampled == t2_star.conclusion ? "PASS" : "FAIL");
    table.Row()
        .Cell("Theorem 3: some optimum linear+CP-free")
        .Cell("C3")
        .Cell("keyed")
        .Cell(t3.sampled)
        .Cell(t3.conclusion)
        .Cell(t3.sampled == t3.conclusion ? "PASS" : "FAIL");
    table.Print();
  }

  PrintSection("Necessity: conclusion failure rates once conditions are dropped");
  {
    // Random (skewed) databases mostly violate the conditions; measure how
    // often each conclusion then fails — nonzero rates demonstrate the
    // conditions carry real weight (the paper's Examples 3-5 are specific
    // witnesses of the same phenomenon).
    int sampled = 0;
    int t1_fail = 0, t2_fail = 0, t3_fail = 0;
    int c1s_holds = 0, c12_holds = 0, c3_holds = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 88172645463325252ULL + 9);
      GeneratorOptions options;
      options.shape = static_cast<QueryShape>(trial % 4);
      options.relation_count = 4 + trial % 2;
      options.rows_per_relation = 6;
      options.join_domain = 3;
      options.join_skew = trial % 3 == 0 ? 1.0 : 0.0;
      Database db = RandomDatabase(options, rng);
      JoinCache cache(&db);
      if (!NonEmpty(cache, db)) continue;
      ++sampled;
      ConditionsSummary conditions = CheckAllConditions(cache);
      if (conditions.c1_strict.satisfied) ++c1s_holds;
      else if (!Theorem1Holds(cache, db)) ++t1_fail;
      if (conditions.c1.satisfied && conditions.c2.satisfied) ++c12_holds;
      else if (!Theorem2Holds(cache, db)) ++t2_fail;
      if (conditions.c3.satisfied) ++c3_holds;
      else if (!Theorem3Holds(cache, db)) ++t3_fail;
    }
    ReportTable necessity_table({"conclusion", "condition held",
                                 "condition dropped", "conclusion failed"});
    ReportTable& table = necessity_table;
    table.Row()
        .Cell("optimal linear avoids CP")
        .Cell(c1s_holds)
        .Cell(sampled - c1s_holds)
        .Cell(t1_fail);
    table.Row()
        .Cell("some optimum CP-free")
        .Cell(c12_holds)
        .Cell(sampled - c12_holds)
        .Cell(t2_fail);
    table.Row()
        .Cell("some optimum linear+CP-free")
        .Cell(c3_holds)
        .Cell(sampled - c3_holds)
        .Cell(t3_fail);
    table.Print();
    std::printf(
        "\n(Nonzero failure counts on the right are expected: they are what\n"
        "the paper's Examples 3-5 demonstrate must be possible.)\n");
  }

  PrintSection("Scale-up: Theorems 2/3 via DP on larger keyed databases");
  {
    // Beyond enumeration reach (the strategy space at n = 10 has 3.4e7
    // trees), the subset DP still certifies the theorems: on C3-satisfying
    // keyed databases the linear/no-CP DP matches the unrestricted DP.
    ReportTable table({"n", "databases (C3 holds)", "DP(all) == DP(linear,no-CP)",
                       "verdict"});
    for (int n : {8, 9, 10}) {
      int sampled = 0, equal = 0;
      for (int trial = 0; trial < 12; ++trial) {
        Rng rng(static_cast<uint64_t>(trial) * 524287 +
                static_cast<uint64_t>(n));
        KeyedGeneratorOptions options;
        options.shape = trial % 2 == 0 ? QueryShape::kChain : QueryShape::kStar;
        options.relation_count = n;
        // High per-edge match rate (7/8) so the 10-way join stays
        // non-empty often enough to sample.
        options.rows_per_relation = 7;
        options.join_domain = 8;
        Database db = KeyedDatabase(options, rng);
        JoinCache cache(&db);
        if (cache.Tau(db.scheme().full_mask()) == 0) continue;
        if (!CheckC3(cache).satisfied) continue;
        ++sampled;
        ExactSizeModel model(&cache);
        auto all = OptimizeDp(db.scheme(), db.scheme().full_mask(), model,
                              {SearchSpace::kBushy, true});
        auto restricted = OptimizeDp(db.scheme(), db.scheme().full_mask(),
                                     model, {SearchSpace::kLinear, false});
        if (all && restricted && all->cost == restricted->cost) ++equal;
      }
      table.Row()
          .Cell(n)
          .Cell(sampled)
          .Cell(equal)
          .Cell(sampled == equal ? "PASS" : "FAIL");
    }
    table.Print();
  }
  return 0;
}
