// Experiment I6 — the paper's opening motivation: "evaluating the joins in
// the wrong order could produce an enormous number of intermediate tuples,
// even if the final result is small." We measure the full τ spread —
// best, median, worst strategy — across the whole strategy space, by query
// shape, plus the final-result size for contrast.

#include <cstdio>

#include "common/rng.h"
#include "core/cost.h"
#include "enumerate/strategy_enumerator.h"
#include "report/stats.h"
#include "report/table.h"
#include "workload/generator.h"

using namespace taujoin;  // NOLINT

int main() {
  const int kTrials = 10;

  PrintSection("I6: tau spread over the whole strategy space (medians over trials)");
  ReportTable t({"shape", "n", "final size", "best tau", "median tau",
                 "worst tau", "worst/best"});
  for (QueryShape shape : {QueryShape::kChain, QueryShape::kStar,
                           QueryShape::kCycle}) {
    for (int n : {4, 5, 6, 7}) {
      SampleStats final_size, best_tau, median_tau, worst_tau, spread;
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng rng(static_cast<uint64_t>(trial) * 271828 +
                static_cast<uint64_t>(n) * 31 + static_cast<uint64_t>(shape));
        GeneratorOptions options;
        options.shape = shape;
        options.relation_count = n;
        options.rows_per_relation = 8;
        options.join_domain = 4;
        options.join_skew = 1.0;
        Database db = RandomDatabase(options, rng);
        JoinCache cache(&db);
        uint64_t final_tau = cache.Tau(db.scheme().full_mask());
        if (final_tau == 0) continue;
        SampleStats costs;
        ForEachStrategy(db.scheme(), db.scheme().full_mask(),
                        StrategySpace::kAll, [&](const Strategy& s) {
                          costs.Add(static_cast<double>(TauCost(s, cache)));
                          return true;
                        });
        final_size.Add(static_cast<double>(final_tau));
        best_tau.Add(costs.Min());
        median_tau.Add(costs.Median());
        worst_tau.Add(costs.Max());
        spread.Add(costs.Max() / costs.Min());
      }
      if (final_size.count() == 0) continue;
      t.Row()
          .Cell(QueryShapeToString(shape))
          .Cell(n)
          .Cell(final_size.Median(), 0)
          .Cell(best_tau.Median(), 0)
          .Cell(median_tau.Median(), 0)
          .Cell(worst_tau.Median(), 0)
          .Cell(spread.Median(), 1);
    }
  }
  t.Print();
  std::printf(
      "\nThe worst/best ratio explodes with query size — the paper's\n"
      "opening sentence measured. A 'typical' (median) strategy is already\n"
      "far from optimal, which is why optimizers search at all; the rest\n"
      "of the paper asks when the *cheap* searches are safe.\n");
  return 0;
}
