// Experiment I6 — the paper's opening motivation: "evaluating the joins in
// the wrong order could produce an enormous number of intermediate tuples,
// even if the final result is small." We measure the full τ spread —
// best, median, worst strategy — across the whole strategy space, by query
// shape, plus the final-result size for contrast.
//
// Strategy-space enumeration per trial is the expensive part, so trials of
// each (shape, n) cell fan out over a ParallelSweep; the per-trial seed
// formula is unchanged from the sequential version, so the printed tables
// are identical for any thread count.

#include <cstdio>

#include "common/rng.h"
#include "core/cost.h"
#include "enumerate/parallel_sweep.h"
#include "enumerate/strategy_enumerator.h"
#include "report/stats.h"
#include "report/table.h"
#include "workload/generator.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  const int kTrials = 10;

  PrintSection("I6: tau spread over the whole strategy space (medians over trials)");
  ReportTable t({"shape", "n", "final size", "best tau", "median tau",
                 "worst tau", "worst/best"});
  for (QueryShape shape : {QueryShape::kChain, QueryShape::kStar,
                           QueryShape::kCycle}) {
    for (int n : {4, 5, 6, 7}) {
      struct TrialSpread {
        bool sampled = false;
        double final_tau = 0.0;
        double best = 0.0, median = 0.0, worst = 0.0;
      };
      std::vector<TrialSpread> spreads =
          ParallelSweep(kTrials, [&](int trial) {
            TrialSpread v;
            Rng rng(static_cast<uint64_t>(trial) * 271828 +
                    static_cast<uint64_t>(n) * 31 +
                    static_cast<uint64_t>(shape));
            GeneratorOptions options;
            options.shape = shape;
            options.relation_count = n;
            options.rows_per_relation = 8;
            options.join_domain = 4;
            options.join_skew = 1.0;
            Database db = RandomDatabase(options, rng);
            CostEngine engine(&db);
            uint64_t final_tau = engine.Tau(db.scheme().full_mask());
            if (final_tau == 0) return v;
            SampleStats costs;
            ForEachStrategy(db.scheme(), db.scheme().full_mask(),
                            StrategySpace::kAll, [&](const Strategy& s) {
                              costs.Add(static_cast<double>(TauCost(s, engine)));
                              return true;
                            });
            v.sampled = true;
            v.final_tau = static_cast<double>(final_tau);
            v.best = costs.Min();
            v.median = costs.Median();
            v.worst = costs.Max();
            return v;
          });
      SampleStats final_size, best_tau, median_tau, worst_tau, spread;
      for (const TrialSpread& v : spreads) {
        if (!v.sampled) continue;
        final_size.Add(v.final_tau);
        best_tau.Add(v.best);
        median_tau.Add(v.median);
        worst_tau.Add(v.worst);
        spread.Add(v.worst / v.best);
      }
      if (final_size.count() == 0) continue;
      t.Row()
          .Cell(QueryShapeToString(shape))
          .Cell(n)
          .Cell(final_size.Median(), 0)
          .Cell(best_tau.Median(), 0)
          .Cell(median_tau.Median(), 0)
          .Cell(worst_tau.Median(), 0)
          .Cell(spread.Median(), 1);
    }
  }
  t.Print();
  std::printf(
      "\nThe worst/best ratio explodes with query size — the paper's\n"
      "opening sentence measured. A 'typical' (median) strategy is already\n"
      "far from optimal, which is why optimizers search at all; the rest\n"
      "of the paper asks when the *cheap* searches are safe.\n");
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
