// Experiment A1 — §4's application: semantic constraints imply the
// conditions. (a) If all joins are on superkeys, C3 holds (hence C1 and C2
// by Lemma 5), so Theorem 3 applies. (b) If the FDs make every join
// lossless (verified by the Aho–Beeri–Ullman chase), C2 holds, so with C1
// Theorem 2 applies.

#include <cstdio>

#include "common/rng.h"
#include "core/conditions.h"
#include "fd/chase.h"
#include "fd/closure.h"
#include "fd/keys.h"
#include "optimize/exhaustive.h"
#include "report/table.h"
#include "workload/keyed_generator.h"
#include "workload/star_schema.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

int main() {
  const int kTrials = 40;

  PrintSection("A1a: joins on superkeys imply C3 (and C1, C2 via Lemma 5)");
  {
    int sampled = 0, c3 = 0, c1 = 0, c2 = 0, theorem3 = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 31337 + 17);
      KeyedGeneratorOptions options;
      options.shape = trial % 2 == 0 ? QueryShape::kChain : QueryShape::kStar;
      options.relation_count = 4 + trial % 2;
      options.rows_per_relation = 4 + trial % 3;
      options.join_domain = options.rows_per_relation + 2;
      Database db = KeyedDatabase(options, rng);
      JoinCache cache(&db);
      if (cache.Tau(db.scheme().full_mask()) == 0) continue;
      ++sampled;
      ConditionsSummary s = CheckAllConditions(cache);
      c3 += s.c3.satisfied;
      c1 += s.c1.satisfied;
      c2 += s.c2.satisfied;
      auto all = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                    StrategySpace::kAll);
      auto lin = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                    StrategySpace::kLinearNoCartesian);
      if (lin.has_value() && lin->cost == all->cost) ++theorem3;
    }
    ReportTable t({"quantity", "expected", "measured"});
    t.Row().Cell("databases (non-empty join)").Cell("-").Cell(sampled);
    t.Row().Cell("C3 holds").Cell(sampled).Cell(c3);
    t.Row().Cell("C1 holds (Lemma 5)").Cell(sampled).Cell(c1);
    t.Row().Cell("C2 holds").Cell(sampled).Cell(c2);
    t.Row().Cell("Theorem 3 conclusion holds").Cell(sampled).Cell(theorem3);
    t.Print();
  }

  PrintSection("A1b: lossless-join FDs (star schemas) imply C2");
  {
    int sampled = 0, lossless = 0, c2 = 0, c3 = 0, theorem2 = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 65537 + 29);
      StarSchemaOptions options;
      options.dimension_count = 3;
      options.fact_rows = 8 + trial % 8;
      options.dimension_rows = 4 + trial % 4;
      options.dimension_domain = options.dimension_rows + 2;
      StarSchemaDatabase star = MakeStarSchema(options, rng);
      JoinCache cache(&star.database);
      if (cache.Tau(star.database.scheme().full_mask()) == 0) continue;
      ++sampled;
      if (HasNoLossyJoins(star.database.scheme(), star.fds)) ++lossless;
      ConditionsSummary s = CheckAllConditions(cache);
      c2 += s.c2.satisfied;
      c3 += s.c3.satisfied;
      if (s.c1.satisfied) {
        auto all = OptimizeExhaustive(cache, star.database.scheme().full_mask(),
                                      StrategySpace::kAll);
        auto nocp = OptimizeExhaustive(cache,
                                       star.database.scheme().full_mask(),
                                       StrategySpace::kNoCartesian);
        if (nocp.has_value() && nocp->cost == all->cost) ++theorem2;
      }
    }
    ReportTable t({"quantity", "expected", "measured"});
    t.Row().Cell("databases (non-empty join)").Cell("-").Cell(sampled);
    t.Row()
        .Cell("chase: no lossy joins under the FK FDs")
        .Cell(sampled)
        .Cell(lossless);
    t.Row().Cell("C2 holds (Section 4)").Cell(sampled).Cell(c2);
    t.Row().Cell("C3 holds (NOT implied: FK joins key one side)").Cell("< all")
        .Cell(c3);
    t.Row().Cell("Theorem 2 conclusion holds when C1 also holds").Cell("-")
        .Cell(theorem2);
    t.Print();
  }

  PrintSection("A1c: key machinery sanity (closure / candidate keys / chase)");
  {
    // The student-course FDs of the §4 discussion.
    FdSet fds;
    fds.Add(FunctionalDependency{Schema{"S"}, Schema{"M"}});   // student->major
    fds.Add(FunctionalDependency{Schema{"I"}, Schema{"D"}});   // instr->dept
    fds.Add(FunctionalDependency{Schema{"C"}, Schema{"I"}});   // course->instr
    ReportTable t({"question", "answer"});
    t.Row()
        .Cell("closure of {C} under C->I, I->D")
        .Cell(AttributeClosure(Schema{"C"}, fds).ToString());
    std::vector<Schema> keys = CandidateKeys(Schema::Parse("CID"), fds);
    t.Row().Cell("candidate keys of CID").Cell(
        keys.empty() ? "-" : keys[0].ToString());
    t.Row()
        .Cell("{CI, ID} lossless under I->D?")
        .Cell(IsLosslessDecomposition(DatabaseScheme::Parse({"CI", "ID"}),
                                      FdSet::Parse({"I->D"}))
                  ? "yes"
                  : "no");
    t.Row()
        .Cell("{MS, SC} lossless with no FDs?")
        .Cell(IsLosslessDecomposition(DatabaseScheme::Parse({"MS", "SC"}),
                                      FdSet{})
                  ? "yes"
                  : "no");
    t.Print();
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
