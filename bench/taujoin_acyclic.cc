// Acyclic-tier benchmark: Yannakakis full-reducer pipeline vs. the tier
// ladder's best binary strategy, head to head on growing chain / star /
// random-acyclic families, writing BENCH_acyclic.json (schema
// taujoin-acyclic-bench/v1) with the latency split of both paths plus
// intermediate-tuple counts — the quantitative "optimizer-free at scale"
// claim of the ROADMAP.
//
// Per (family, n) point, over the same random database:
//  * binary path: cold exact tier ladder (OptimizeAdaptive with the
//    acyclic tier disabled — greedy/IKKBZ floor, exhaustive n ≤ 7, DPccp
//    above) + ExecuteStrategy of the winning plan;
//  * acyclic path: AnalyzeAcyclicity (GYO + join tree) + YannakakisExecute
//    (two semijoin passes + joins along the tree) on the same morsel-
//    parallel kernels.
// Both paths must produce identical output cardinality (checked here; the
// differential test pins full equality). The acceptance bar — acyclic
// beats binary end-to-end at n ≥ 8 on chains and stars — is enforced by
// tools/check_bench_metrics.py over the emitted artifact.
//
// The artifact carries the usual Release gate: a non-NDEBUG build refuses
// to write JSON unless TAUJOIN_ALLOW_NONRELEASE_JSON=1.
//
// Usage:
//   taujoin_acyclic [--rows=2048] [--seed=42] [--skew=0.3]
//                   [--out=BENCH_acyclic.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/cost.h"
#include "core/trace.h"
#include "optimize/adaptive.h"
#include "relational/morsel.h"
#include "scheme/hypergraph.h"
#include "semijoin/yannakakis.h"
#include "workload/generator.h"

namespace taujoin {
namespace {

#ifdef NDEBUG
constexpr bool kReleaseBuild = true;
constexpr const char* kBuildType = "release";
#else
constexpr bool kReleaseBuild = false;
constexpr const char* kBuildType = "debug";
#endif

struct BenchConfig {
  int rows = 2048;
  uint64_t seed = 42;
  double skew = 0.3;
  std::string out_path = "BENCH_acyclic.json";
};

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct RunRecord {
  std::string family;
  int n = 0;
  int rows = 0;
  int domain = 0;
  // Binary path: cold exact ladder + strategy execution.
  std::string binary_tier;
  uint64_t binary_plan_ns = 0;
  uint64_t binary_exec_ns = 0;
  uint64_t binary_total_ns = 0;
  uint64_t binary_intermediate_rows = 0;
  // Acyclic path: detection + reduction + tree joins.
  uint64_t acyclic_detect_ns = 0;
  uint64_t acyclic_reduce_ns = 0;
  uint64_t acyclic_join_ns = 0;
  uint64_t acyclic_total_ns = 0;
  uint64_t acyclic_intermediate_rows = 0;
  uint64_t rows_dropped = 0;
  uint64_t output_rows = 0;
  /// binary_total / acyclic_total, fixed-point ×1000.
  uint64_t speedup_x1000 = 0;
};

RunRecord RunOne(QueryShape family, int n, const BenchConfig& config) {
  RunRecord rec;
  rec.family = QueryShapeToString(family);
  rec.n = n;
  rec.rows = config.rows;
  rec.domain = config.rows;  // ~63% of rows match per edge; the rest dangle

  GeneratorOptions gen;
  gen.shape = family;
  gen.relation_count = n;
  gen.rows_per_relation = config.rows;
  gen.join_domain = rec.domain;
  gen.join_skew = config.skew;
  Rng rng(config.seed + static_cast<uint64_t>(n));
  const Database db = RandomDatabase(gen, rng);
  const RelMask mask = db.scheme().full_mask();

  // Binary path: the serving tier's exact ladder with the acyclic tier
  // switched off — what every one of these queries paid before this PR.
  {
    const uint64_t plan_start = NowNanos();
    CostEngine engine(&db);
    AdaptiveOptions options;
    options.enable_acyclic = false;
    const AdaptiveResult result = OptimizeAdaptive(engine, mask, options);
    rec.binary_plan_ns = NowNanos() - plan_start;
    rec.binary_tier = OptimizerTierToString(result.tier);

    const uint64_t exec_start = NowNanos();
    const EvaluationTrace trace = ExecuteStrategy(db, result.plan.strategy);
    rec.binary_exec_ns = NowNanos() - exec_start;
    rec.binary_total_ns = rec.binary_plan_ns + rec.binary_exec_ns;
    for (size_t s = 0; s + 1 < trace.steps.size(); ++s) {
      rec.binary_intermediate_rows += trace.steps[s].output_size;
    }
    rec.output_rows = trace.result.size();
  }

  // Acyclic path: detection (once per fingerprint in the serving layer,
  // paid here to keep the comparison end-to-end honest), then the
  // Yannakakis pipeline on the same kernels.
  {
    const uint64_t detect_start = NowNanos();
    const AcyclicAnalysis analysis = AnalyzeAcyclicity(db.scheme(), mask);
    rec.acyclic_detect_ns = NowNanos() - detect_start;
    if (!analysis.acyclic) {
      std::fprintf(stderr, "taujoin_acyclic: %s/n%d unexpectedly cyclic\n",
                   rec.family.c_str(), n);
      std::exit(1);
    }
    const YannakakisResult yr = YannakakisExecute(db, analysis);
    rec.acyclic_reduce_ns = yr.reduce_ns;
    rec.acyclic_join_ns = yr.join_ns;
    rec.acyclic_total_ns =
        rec.acyclic_detect_ns + yr.reduce_ns + yr.join_ns;
    for (size_t s = 0; s + 1 < yr.step_sizes.size(); ++s) {
      rec.acyclic_intermediate_rows += yr.step_sizes[s];
    }
    rec.rows_dropped = yr.reducer.rows_dropped;
    if (yr.result.size() != rec.output_rows) {
      std::fprintf(stderr,
                   "taujoin_acyclic: %s/n%d output mismatch (%zu vs %llu)\n",
                   rec.family.c_str(), n, yr.result.size(),
                   static_cast<unsigned long long>(rec.output_rows));
      std::exit(1);
    }
  }
  rec.speedup_x1000 = rec.acyclic_total_ns > 0
                          ? rec.binary_total_ns * 1000 / rec.acyclic_total_ns
                          : 0;
  return rec;
}

int Main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--rows=", 0) == 0) {
      config.rows = std::atoi(value("--rows=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = static_cast<uint64_t>(std::atoll(value("--seed=").c_str()));
    } else if (arg.rfind("--skew=", 0) == 0) {
      config.skew = std::atof(value("--skew=").c_str());
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out_path = value("--out=");
    } else {
      std::fprintf(stderr, "taujoin_acyclic: unknown argument %s\n",
                   arg.c_str());
      return 1;
    }
  }
  if (config.rows <= 0) {
    std::fprintf(stderr, "taujoin_acyclic: --rows must be positive\n");
    return 1;
  }

  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::fprintf(stderr, "taujoin_acyclic: rows=%d build=%s threads=%d hw=%d\n",
               config.rows, kBuildType, ResolveThreads(0), hw);

  const std::vector<QueryShape> families{QueryShape::kChain, QueryShape::kStar,
                                         QueryShape::kAcyclic};
  const std::vector<int> sizes{4, 6, 8, 10};
  std::vector<RunRecord> runs;
  for (const QueryShape family : families) {
    for (const int n : sizes) {
      RunRecord rec = RunOne(family, n, config);
      std::fprintf(
          stderr,
          "%-8s n=%-2d binary %8.2fms (plan %8.2f, tier %-10s) "
          "yannakakis %8.2fms (reduce %6.2f) speedup %5.1fx "
          "intermediates %llu vs %llu, dropped %llu, out %llu\n",
          rec.family.c_str(), rec.n,
          static_cast<double>(rec.binary_total_ns) / 1e6,
          static_cast<double>(rec.binary_plan_ns) / 1e6,
          rec.binary_tier.c_str(),
          static_cast<double>(rec.acyclic_total_ns) / 1e6,
          static_cast<double>(rec.acyclic_reduce_ns) / 1e6,
          static_cast<double>(rec.speedup_x1000) / 1e3,
          static_cast<unsigned long long>(rec.binary_intermediate_rows),
          static_cast<unsigned long long>(rec.acyclic_intermediate_rows),
          static_cast<unsigned long long>(rec.rows_dropped),
          static_cast<unsigned long long>(rec.output_rows));
      runs.push_back(std::move(rec));
    }
  }

  const char* allow = std::getenv("TAUJOIN_ALLOW_NONRELEASE_JSON");
  const bool allow_nonrelease =
      allow != nullptr && allow[0] != '\0' && std::string(allow) != "0";
  if (!kReleaseBuild && !allow_nonrelease) {
    std::fprintf(stderr,
                 "\n*** TAUJOIN WARNING ***\n"
                 "Non-Release build: refusing to write %s (set "
                 "TAUJOIN_ALLOW_NONRELEASE_JSON=1 to override).\n",
                 config.out_path.c_str());
    MaybeReportProcessMetrics();
    return 0;
  }

  std::string json = "{\n";
  json += "  \"schema\": \"taujoin-acyclic-bench/v1\",\n";
  json += "  \"context\": {\n";
  json += std::string("    \"taujoin_build_type\": \"") + kBuildType + "\",\n";
  json += "    \"rows\": " + std::to_string(config.rows) + ",\n";
  json += "    \"seed\": " + std::to_string(config.seed) + ",\n";
  json += "    \"skew\": " + std::to_string(config.skew) + ",\n";
  json += "    \"threads\": " + std::to_string(ResolveThreads(0)) + ",\n";
  json += "    \"morsel_rows\": " + std::to_string(ResolveMorselRows(0)) +
          ",\n";
  json += "    \"hardware_concurrency\": " + std::to_string(hw) + "\n";
  json += "  },\n";
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    json += "    {\"family\": \"" + r.family + "\"";
    json += ", \"n\": " + std::to_string(r.n);
    json += ", \"rows\": " + std::to_string(r.rows);
    json += ", \"domain\": " + std::to_string(r.domain);
    json += ", \"binary_tier\": \"" + r.binary_tier + "\"";
    json += ", \"binary_plan_ns\": " + std::to_string(r.binary_plan_ns);
    json += ", \"binary_exec_ns\": " + std::to_string(r.binary_exec_ns);
    json += ", \"binary_total_ns\": " + std::to_string(r.binary_total_ns);
    json += ", \"binary_intermediate_rows\": " +
            std::to_string(r.binary_intermediate_rows);
    json += ", \"acyclic_detect_ns\": " + std::to_string(r.acyclic_detect_ns);
    json += ", \"acyclic_reduce_ns\": " + std::to_string(r.acyclic_reduce_ns);
    json += ", \"acyclic_join_ns\": " + std::to_string(r.acyclic_join_ns);
    json += ", \"acyclic_total_ns\": " + std::to_string(r.acyclic_total_ns);
    json += ", \"acyclic_intermediate_rows\": " +
            std::to_string(r.acyclic_intermediate_rows);
    json += ", \"rows_dropped\": " + std::to_string(r.rows_dropped);
    json += ", \"output_rows\": " + std::to_string(r.output_rows);
    json += ", \"speedup_x1000\": " + std::to_string(r.speedup_x1000);
    json += "}";
    json += (i + 1 < runs.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"taujoin_metrics\": " +
          MetricsRegistry::Global().Snapshot().ToJson() + "\n";
  json += "}\n";

  std::ofstream out(config.out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "taujoin_acyclic: cannot write %s\n",
                 config.out_path.c_str());
    return 1;
  }
  out << json;
  std::fprintf(stderr, "taujoin_acyclic: wrote %s\n", config.out_path.c_str());
  MaybeReportProcessMetrics();
  return 0;
}

}  // namespace
}  // namespace taujoin

int main(int argc, char** argv) { return taujoin::Main(argc, argv); }
