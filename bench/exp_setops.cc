// Experiment A3 — §5's closing application: intersections and unions as
// degenerate join databases. For intersections (⋈ := ∩ over identical
// schemes) C3 holds automatically, so by Theorem 3 a *linear* order
// minimizes the number of generated elements. For unions (⋈ := ∪) C4
// holds; we measure how strategy shape affects the duplicate-elimination
// work.

#include <cstdio>
#include <functional>
#include <map>

#include "common/rng.h"
#include "core/conditions.h"
#include "core/cost.h"
#include "optimize/exhaustive.h"
#include "relational/operators.h"
#include "report/stats.h"
#include "report/table.h"

#include "common/metrics.h"

using namespace taujoin;  // NOLINT

namespace {

/// Random subsets of [0, universe) as unary relations over attribute "A".
std::vector<Relation> RandomSets(int count, int universe, double density,
                                 Rng& rng) {
  std::vector<Relation> sets;
  for (int i = 0; i < count; ++i) {
    Relation r{Schema{"A"}};
    for (int v = 0; v < universe; ++v) {
      if (rng.Bernoulli(density)) r.Insert(Tuple{v});
    }
    // Keep a shared core so the overall intersection is non-empty (the
    // paper's hypothesis ∩ X_k ≠ φ).
    r.Insert(Tuple{universe});
    sets.push_back(std::move(r));
  }
  return sets;
}

/// Generic cost of evaluating a binary set-operation tree: sum of the
/// sizes of all intermediate and final results (the τ measure with ⋈
/// replaced by `op`). Enumerates all trees over the component masks.
struct SetOpSpace {
  std::vector<Relation> sets;
  std::function<Relation(const Relation&, const Relation&)> op;

  /// Minimum cost over all (or only linear) trees; small n exhaustive.
  uint64_t Best(bool linear_only) {
    std::map<uint32_t, Relation> results;
    std::function<const Relation&(uint32_t)> result_of =
        [&](uint32_t mask) -> const Relation& {
      auto it = results.find(mask);
      if (it != results.end()) return it->second;
      int low = __builtin_ctz(mask);
      if (mask == (1u << low)) {
        return results.emplace(mask, sets[static_cast<size_t>(low)])
            .first->second;
      }
      const Relation& rest = result_of(mask & (mask - 1));
      const Relation& lowr = result_of(1u << low);
      return results.emplace(mask, op(rest, lowr)).first->second;
    };
    // Cost of result of a subset is size of result; like joins, the
    // operation result depends only on the subset, so DP applies.
    std::map<uint32_t, uint64_t> best;
    const uint32_t full = (1u << sets.size()) - 1;
    std::function<uint64_t(uint32_t)> solve = [&](uint32_t mask) -> uint64_t {
      if (__builtin_popcount(mask) == 1) return 0;
      auto it = best.find(mask);
      if (it != best.end()) return it->second;
      uint64_t best_cost = UINT64_MAX;
      uint32_t low = mask & (~mask + 1);
      uint32_t rest = mask & ~low;
      uint32_t sub = 0;
      while (true) {
        uint32_t left = low | sub;
        if (left != mask) {
          uint32_t right = mask & ~left;
          bool allowed = !linear_only || __builtin_popcount(left) == 1 ||
                         __builtin_popcount(right) == 1;
          if (allowed) {
            uint64_t cost = solve(left) + solve(right);
            if (cost != UINT64_MAX) best_cost = std::min(best_cost, cost);
          }
        }
        if (sub == rest) break;
        sub = (sub - rest) & rest;
      }
      best_cost += result_of(mask).Tau();
      best[mask] = best_cost;
      return best_cost;
    };
    return solve(full);
  }
};

}  // namespace

int main() {
  const int kTrials = 20;

  PrintSection("A3a: intersections — a linear order is always optimal (Theorem 3)");
  {
    SampleStats gap;
    int equal = 0, sampled = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 503 + 41);
      SetOpSpace space;
      space.sets = RandomSets(6, 30, 0.5, rng);
      space.op = [](const Relation& a, const Relation& b) {
        return *Intersect(a, b);
      };
      uint64_t best_all = space.Best(false);
      uint64_t best_linear = space.Best(true);
      ++sampled;
      if (best_all == best_linear) ++equal;
      gap.Add(static_cast<double>(best_linear) /
              static_cast<double>(best_all));
    }
    ReportTable t({"quantity", "expected", "measured"});
    t.Row().Cell("instances").Cell("-").Cell(sampled);
    t.Row()
        .Cell("linear optimum == global optimum")
        .Cell(sampled)
        .Cell(equal);
    t.Row().Cell("max linear/global ratio").Cell("1.000").Cell(gap.Max(), 3);
    t.Print();
  }

  PrintSection("A3b: the same check through the join machinery (∩ = ⋈ on equal schemes)");
  {
    // Identical schemes make natural join set intersection, so the full
    // taujoin stack applies directly: C3 must hold and Theorem 3 must be
    // observable.
    int sampled = 0, c3 = 0, theorem3 = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 769 + 3);
      std::vector<Relation> sets = RandomSets(5, 24, 0.5, rng);
      std::vector<Schema> schemes(sets.size(), Schema{"A"});
      Database db = Database::CreateOrDie(DatabaseScheme(schemes), sets);
      JoinCache cache(&db);
      if (cache.Tau(db.scheme().full_mask()) == 0) continue;
      ++sampled;
      if (CheckC3(cache).satisfied) ++c3;
      auto all = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                    StrategySpace::kAll);
      auto lin = OptimizeExhaustive(cache, db.scheme().full_mask(),
                                    StrategySpace::kLinear);
      if (lin->cost == all->cost) ++theorem3;
    }
    ReportTable t({"quantity", "expected", "measured"});
    t.Row().Cell("instances").Cell("-").Cell(sampled);
    t.Row().Cell("C3 holds (Section 5 claim)").Cell(sampled).Cell(c3);
    t.Row()
        .Cell("a linear strategy attains the optimum")
        .Cell(sampled)
        .Cell(theorem3);
    t.Print();
  }

  PrintSection("A3c: unions — C4 analogue; strategy shape and duplicate work");
  {
    SampleStats linear_ratio;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(static_cast<uint64_t>(trial) * 881 + 27);
      SetOpSpace space;
      space.sets = RandomSets(6, 30, 0.4, rng);
      space.op = [](const Relation& a, const Relation& b) {
        return *Union(a, b);
      };
      uint64_t best_all = space.Best(false);
      uint64_t best_linear = space.Best(true);
      linear_ratio.Add(static_cast<double>(best_linear) /
                       static_cast<double>(best_all));
    }
    ReportTable t({"quantity", "measured"});
    t.Row().Cell("median linear/global cost ratio").Cell(linear_ratio.Median(), 3);
    t.Row().Cell("max linear/global cost ratio").Cell(linear_ratio.Max(), 3);
    t.Print();
    std::printf(
        "\nFor unions the τ analogue counts elements produced before\n"
        "duplicate elimination; the paper leaves optimality here as an open\n"
        "question — the measured ratios show linear orders remain close\n"
        "but are not always exactly optimal.\n");
  }
  taujoin::MaybeReportProcessMetrics();
  return 0;
}
